package main

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"omegasm"
	"omegasm/internal/harness"
	"omegasm/load"
)

// loadSpec is the workload the -load benchmark runs against both
// substrates: a Poisson client population over a Zipf-skewed key space,
// split into an interactive SLO class and a batch SLO class.
func loadSpec(dur time.Duration) load.Spec {
	return load.Spec{
		Name:         "mixed-slo",
		Clients:      64,
		Duration:     dur,
		Seed:         7,
		Rate:         2000,
		Process:      load.Poisson,
		Keys:         1024,
		ZipfS:        1.2,
		ReadFraction: 0.5,
		Classes: []load.Class{
			{Name: "interactive", Weight: 0.7, SLO: 20 * time.Millisecond},
			{Name: "batch", Weight: 0.3, SLO: 200 * time.Millisecond},
		},
	}
}

// runLoad executes the latency-under-load benchmark: the same open-loop
// spec against the simulated sharded store (twice, asserting the runs
// are byte-identical) and against a live ShardedKV, then scores the
// sim's percentile predictions against the live measurements and writes
// BENCH_latency_under_load.json.
func runLoad(dir string, dur time.Duration) int {
	const shards, procs = 2, 3
	spec := loadSpec(dur)

	fmt.Printf("latency under load: %q, %v window, %.0f req/s over %d clients, %d shards x %d procs\n",
		spec.Name, spec.Duration, spec.Rate, spec.Clients, shards, procs)

	simOpts := load.SimOptions{Shards: shards, N: procs}
	simRep, err := load.RunSim(&spec, simOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: sim load run: %v\n", err)
		return 1
	}
	simAgain, err := load.RunSim(&spec, simOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: sim load rerun: %v\n", err)
		return 1
	}
	if !reflect.DeepEqual(simRep, simAgain) {
		fmt.Fprintf(os.Stderr, "omegabench: sim load run is not reproducible:\n%+v\n%+v\n", simRep, simAgain)
		return 1
	}
	fmt.Printf("\n%s(repeated run byte-identical)\n", simRep.String())

	liveRep, err := runLoadLive(&spec, shards, procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: live load run: %v\n", err)
		return 1
	}
	fmt.Printf("\n%s", liveRep.String())

	calib := load.Calibrate(&simRep, &liveRep)
	fmt.Printf("\nsim-vs-live calibration over %d percentile pairs: MAPE %.1f%%, Pearson r %.3f\n",
		calib.Pairs, calib.MAPEPct, calib.PearsonR)

	points := make([]any, 0, 2*len(spec.Classes)+3)
	for _, rep := range []*load.Report{&simRep, &liveRep} {
		for _, c := range rep.Classes {
			points = append(points, harness.LoadClassPoint{
				Mode:          rep.Mode,
				Class:         c.Name,
				SLOMs:         ms(c.SLO),
				Requests:      c.Requests,
				Completed:     c.Completed,
				Attainment:    c.Attainment,
				GoodputPerSec: c.Goodput,
				P50Ms:         ms(c.P50),
				P95Ms:         ms(c.P95),
				P99Ms:         ms(c.P99),
				P999Ms:        ms(c.P999),
			})
		}
		points = append(points, harness.LoadModePoint{
			Mode:             rep.Mode,
			Class:            "(all)",
			Requests:         rep.Requests,
			Completed:        rep.Completed,
			ThroughputPerSec: rep.Throughput,
			GoodputPerSec:    rep.Goodput,
			JainFairness:     rep.JainFairness,
		})
	}
	points = append(points, harness.LoadCalibrationPoint{
		Mode:     "sim-vs-live",
		MAPEPct:  calib.MAPEPct,
		PearsonR: calib.PearsonR,
		Pairs:    calib.Pairs,
	})
	path, err := harness.WriteBenchJSON(dir, harness.BenchReport{
		Name:   "latency_under_load",
		Unit:   "open-loop latency from scheduled arrival (ms), per SLO class; sim (virtual time) vs live (wall clock), one spec",
		Points: points,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runLoadLive brings up a live ShardedKV matching the sim substrate and
// executes the spec against it on the wall clock.
func runLoadLive(spec *load.Spec, shards, procs int) (load.Report, error) {
	skv, err := omegasm.NewShardedKV(
		omegasm.WithShards(shards),
		omegasm.WithN(procs),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		return load.Report{}, err
	}
	if err := skv.Start(); err != nil {
		skv.Close()
		return load.Report{}, err
	}
	defer skv.Close()
	if !skv.WaitForAgreement(20 * time.Second) {
		return load.Report{}, fmt.Errorf("shards did not elect a leader in time")
	}
	return load.RunLive(spec, skv, load.LiveOptions{})
}

// ms converts a duration to float milliseconds for the JSON points.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
