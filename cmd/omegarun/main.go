// Command omegarun runs a single experiment or a single ad-hoc simulated
// run and prints the outcome.
//
// Usage:
//
//	omegarun -exp F2 [-quick]          # one experiment from the index
//	omegarun -algo algo1 -n 8 -seed 7  # one ad-hoc run with full detail
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"omegasm/internal/harness"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The id list is derived from the harness index so it cannot drift as
	// experiments are added.
	exp := flag.String("exp", "", fmt.Sprintf("experiment id (%s); empty for an ad-hoc run",
		strings.Join(harness.IDs(), ", ")))
	quick := flag.Bool("quick", false, "smaller horizons and seed counts")
	algo := flag.String("algo", "algo1", "algorithm: algo1|algo2|nwnr|timerfree|baseline|strawman")
	n := flag.Int("n", 5, "number of processes")
	seed := flag.Int64("seed", 1, "run seed")
	horizon := flag.Int64("horizon", 400_000, "virtual-time horizon (ticks)")
	crashes := flag.Int("crashes", 0, "number of processes to crash (never process 0)")
	census := flag.Bool("census", false, "print the full end-of-run register census")
	flag.Parse()

	if *exp != "" {
		e, err := harness.ByID(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegarun: %v\n", err)
			return 1
		}
		out, err := e.Run(harness.Config{Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegarun: %v\n", err)
			return 1
		}
		fmt.Printf("%s — %s\npaper artifact: %s\n", e.ID, e.Title, e.Paper)
		for _, tbl := range out.Tables {
			fmt.Printf("\n%s", tbl.Render())
		}
		if out.Report != nil {
			fmt.Printf("\nverdicts:\n%s", out.Report)
			if !out.Report.AllOK() {
				return 1
			}
		}
		return 0
	}

	p := harness.Preset{
		Algo:    harness.Algo(*algo),
		N:       *n,
		Seed:    *seed,
		Horizon: vclock.Time(*horizon),
		AWBProc: 0,
		Tau1:    vclock.Time(*horizon) / 8,
		Delta:   8,
	}
	if *crashes > 0 {
		p.Crash = map[int]vclock.Time{}
		for c := 0; c < *crashes && c+1 < *n; c++ {
			p.Crash[c+1] = vclock.Time(*horizon) / 3
		}
	}
	out, err := harness.Execute(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegarun: %v\n", err)
		return 1
	}
	fmt.Printf("algo=%s n=%d seed=%d horizon=%d crashes=%d\n", *algo, *n, *seed, *horizon, *crashes)
	fmt.Printf("stabilized=%v leader=%d stabTime=%d end=%d\n",
		out.Stable, out.Leader, out.StabTime, out.Res.End)
	fmt.Printf("leader changes in last quarter: %d\n",
		trace.LeaderChangesAfter(out.Res.Samples, out.Res.End*3/4))
	if out.StableBeforeMid() {
		suffix := out.Suffix()
		fmt.Printf("suffix writers: %v\n", suffix.Writers())
		fmt.Printf("suffix registers written: %v\n", suffix.WrittenRegisters())
	}
	fmt.Printf("shared-memory footprint: %d bits across %d registers\n",
		out.End.TotalBits(), len(out.End.Regs))
	if *census {
		fmt.Printf("\ncensus:\n%s", out.End)
	}
	return 0
}
