package omegasm

import (
	"fmt"
	"time"
)

// Option configures New (cluster options), NewFleet (cluster options
// applied to every member, plus the fleet-only options WithClusters,
// WithRefreshInterval and WithClusterOptions) or NewShardedKV (fleet
// options plus the sharded-only WithShards, WithBatchSize and
// WithShardSlots). Options are applied in order; later options override
// earlier ones. An option that is invalid on its own (WithN(1),
// WithAlgorithm(99)) fails the constructor with a descriptive error, as
// do conflicting combinations (two substrates) and options passed to a
// constructor they do not apply to (fleet-only options to New,
// sharded-only options to New or NewFleet).
type Option func(*settings) error

// settings is the resolved configuration an option list denotes. One
// settings value describes one cluster; fleet-only fields ride along and
// are rejected where they make no sense.
type settings struct {
	// Cluster-level.
	n            int
	algorithm    Algorithm
	stepInterval time.Duration
	stepSet      bool
	timerUnit    time.Duration
	timerSet     bool
	instrument   bool
	substrate    Substrate
	substrateSet bool

	// Fleet-level.
	clusters        int
	refreshInterval time.Duration
	overrides       []clusterOverride
	fleetOpts       []string // fleet-only options seen; New rejects them

	// Sharded-store-level (NewShardedKV only). checkpointEvery keeps the
	// ckptAuto sentinel until WithCheckpointEvery chooses a cadence.
	shards          int
	batchSize       int
	shardSlots      int
	checkpointEvery int
	shardedOpts     []string // sharded-only options seen; New and NewFleet reject them

	// inOverride is true while a WithClusterOptions list is applied, so
	// fleet-only options can reject nesting.
	inOverride bool
}

type clusterOverride struct {
	index int
	opts  []Option
}

// newSettings returns the defaults an empty option list denotes. N has no
// default: WithN is required.
func newSettings() *settings {
	return &settings{
		algorithm:       WriteEfficient,
		substrate:       Atomic(),
		clusters:        1,
		shards:          1,
		checkpointEvery: ckptAuto,
	}
}

// apply runs every option against s.
func (s *settings) apply(opts []Option) error {
	for _, o := range opts {
		if o == nil {
			return fmt.Errorf("omegasm: nil Option")
		}
		if err := o(s); err != nil {
			return err
		}
	}
	return nil
}

// finalizeCluster validates the cluster-level fields and fills the
// remaining defaults (the substrate chooses the pacing defaults: disk
// registers are orders of magnitude slower than atomic words).
func (s *settings) finalizeCluster() error {
	if s.n < 2 {
		return fmt.Errorf("omegasm: need at least 2 processes, got %d (use WithN)", s.n)
	}
	if !s.algorithm.valid() {
		return fmt.Errorf("omegasm: unknown algorithm %v", s.algorithm)
	}
	step, timer := s.substrate.pacing()
	if !s.stepSet {
		s.stepInterval = step
	}
	if !s.timerSet {
		s.timerUnit = timer
	}
	return nil
}

// rejectFleetOptions errors if any fleet-only option was used; New calls
// it so WithClusters et al. cannot silently vanish into a single cluster.
func (s *settings) rejectFleetOptions() error {
	if len(s.fleetOpts) > 0 {
		return fmt.Errorf("omegasm: option %s only applies to NewFleet", s.fleetOpts[0])
	}
	return nil
}

// rejectShardedOptions errors if any sharded-store-only option was used;
// New and NewFleet call it so WithShards et al. cannot silently vanish.
func (s *settings) rejectShardedOptions() error {
	if len(s.shardedOpts) > 0 {
		return fmt.Errorf("omegasm: option %s only applies to NewShardedKV", s.shardedOpts[0])
	}
	return nil
}

// setSubstrate installs sub, rejecting a second substrate choice.
func (s *settings) setSubstrate(sub Substrate, option string) error {
	if s.substrateSet {
		return fmt.Errorf("omegasm: conflicting substrate options (%s after the substrate was already chosen)", option)
	}
	s.substrate = sub
	s.substrateSet = true
	return nil
}

// WithN sets the number of processes per cluster (required, >= 2).
func WithN(n int) Option {
	return func(s *settings) error {
		if n < 2 {
			return fmt.Errorf("omegasm: need at least 2 processes, got %d", n)
		}
		s.n = n
		return nil
	}
}

// WithAlgorithm selects the election algorithm (default WriteEfficient).
// All four variants — WriteEfficient, Bounded, NWnR, TimerFree — run on
// every substrate.
func WithAlgorithm(a Algorithm) Option {
	return func(s *settings) error {
		if !a.valid() {
			return fmt.Errorf("omegasm: unknown algorithm %v", a)
		}
		s.algorithm = a
		return nil
	}
}

// WithStepInterval sets the pause between main-loop iterations of each
// process. The default depends on the substrate: 200us on atomic memory,
// 2ms on a SAN (quorum disk accesses are slow; pacing faster than the
// medium just queues suspicion). Smaller values elect faster and write
// more.
func WithStepInterval(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("omegasm: step interval must be positive, got %v", d)
		}
		s.stepInterval = d
		s.stepSet = true
		return nil
	}
}

// WithTimerUnit sets the conversion from the algorithms' abstract timeout
// values into real durations. The default depends on the substrate: 2ms
// on atomic memory, 25ms on a SAN.
func WithTimerUnit(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("omegasm: timer unit must be positive, got %v", d)
		}
		s.timerUnit = d
		s.timerSet = true
		return nil
	}
}

// WithInstrumentation enables the shared-memory access census (Stats).
// The census is lock-free — per-process atomic counters per register — so
// the cost is a few uncontended atomic adds per access.
func WithInstrumentation() Option {
	return func(s *settings) error {
		s.instrument = true
		return nil
	}
}

// WithSubstrate selects the shared-memory substrate the cluster's
// processes communicate through: Atomic() (the default) or SAN(cfg).
// Conflicts with WithSAN and with a second WithSubstrate.
func WithSubstrate(sub Substrate) Option {
	return func(s *settings) error {
		if sub == nil {
			return fmt.Errorf("omegasm: nil substrate")
		}
		return s.setSubstrate(sub, "WithSubstrate")
	}
}

// WithSAN is shorthand for WithSubstrate(SAN(cfg)): run the cluster over
// quorum-replicated simulated network-attached disks, the paper's
// motivating deployment. Conflicts with WithSubstrate and with a second
// WithSAN.
func WithSAN(cfg SANConfig) Option {
	return func(s *settings) error {
		sub, err := newSANSubstrate(cfg)
		if err != nil {
			return err
		}
		return s.setSubstrate(sub, "WithSAN")
	}
}

// WithClusters sets the number of independent clusters a Fleet runs
// (default 1). Fleet-only.
func WithClusters(k int) Option {
	return func(s *settings) error {
		if s.inOverride {
			return fmt.Errorf("omegasm: WithClusters is not allowed inside WithClusterOptions")
		}
		if k < 1 {
			return fmt.Errorf("omegasm: need at least 1 cluster, got %d", k)
		}
		s.clusters = k
		s.fleetOpts = append(s.fleetOpts, "WithClusters")
		return nil
	}
}

// WithRefreshInterval sets how often a Fleet refreshes its cached
// per-cluster agreement view; default 200us. Leader answers are at most
// this stale. Fleet-only.
func WithRefreshInterval(d time.Duration) Option {
	return func(s *settings) error {
		if s.inOverride {
			return fmt.Errorf("omegasm: WithRefreshInterval is not allowed inside WithClusterOptions")
		}
		if d <= 0 {
			return fmt.Errorf("omegasm: refresh interval must be positive, got %v", d)
		}
		s.refreshInterval = d
		s.fleetOpts = append(s.fleetOpts, "WithRefreshInterval")
		return nil
	}
}

// WithShards sets the number of hash partitions of a ShardedKV (default
// 1). Each shard is one consensus-backed replicated store over its own
// cluster of the store's fleet, so S shards run S independent Disk-Paxos
// logs whose commit pipelines never contend with each other.
// NewShardedKV-only.
func WithShards(s int) Option {
	return func(set *settings) error {
		if set.inOverride {
			return fmt.Errorf("omegasm: WithShards is not allowed inside WithClusterOptions")
		}
		if s < 1 {
			return fmt.Errorf("omegasm: need at least 1 shard, got %d", s)
		}
		set.shards = s
		set.shardedOpts = append(set.shardedOpts, "WithShards")
		return nil
	}
}

// WithBatchSize sets how many queued writes one consensus slot of a
// ShardedKV shard may commit (default DefaultBatchSize; 1 turns batching
// off). Larger batches amortize one Disk-Paxos round — and its quorum
// I/O on the SAN — across more writes at the price of the reserved key
// 0xFFFF (see KVBatch). NewShardedKV-only; for a standalone KV pass
// KVBatch to NewKV instead.
func WithBatchSize(b int) Option {
	return func(set *settings) error {
		if set.inOverride {
			return fmt.Errorf("omegasm: WithBatchSize is not allowed inside WithClusterOptions")
		}
		if b < 1 {
			return fmt.Errorf("omegasm: batch size must be at least 1, got %d", b)
		}
		set.batchSize = b
		set.shardedOpts = append(set.shardedOpts, "WithBatchSize")
		return nil
	}
}

// WithShardSlots sets the replicated-log capacity, in consensus slots, of
// each shard of a ShardedKV (default 1024, as NewKV). With batching one
// slot commits up to WithBatchSize writes, so a shard's write capacity is
// up to slots * batch commands. NewShardedKV-only; for a standalone KV
// pass KVSlots to NewKV instead.
func WithShardSlots(n int) Option {
	return func(set *settings) error {
		if set.inOverride {
			return fmt.Errorf("omegasm: WithShardSlots is not allowed inside WithClusterOptions")
		}
		if n < 1 {
			return fmt.Errorf("omegasm: need at least 1 log slot per shard, got %d", n)
		}
		set.shardSlots = n
		set.shardedOpts = append(set.shardedOpts, "WithShardSlots")
		return nil
	}
}

// WithCheckpointEvery sets each shard's checkpoint cadence: every n
// decided slots the shard's leader seals the log prefix into a published
// snapshot, and once a quorum acknowledges it the sealed slots recycle —
// so the shard's write stream is unbounded (the default cadence is a
// quarter of the shard's slot window). WithCheckpointEvery(0) disables
// checkpointing: each shard's log is then a fixed array that fills
// permanently after WithShardSlots slots, restoring ErrLogFull. n must
// be below the shard slot count. NewShardedKV-only; for a standalone KV
// pass KVCheckpointEvery to NewKV instead.
func WithCheckpointEvery(n int) Option {
	return func(set *settings) error {
		if set.inOverride {
			return fmt.Errorf("omegasm: WithCheckpointEvery is not allowed inside WithClusterOptions")
		}
		if n < 0 {
			return fmt.Errorf("omegasm: checkpoint interval must not be negative, got %d", n)
		}
		set.checkpointEvery = n
		set.shardedOpts = append(set.shardedOpts, "WithCheckpointEvery")
		return nil
	}
}

// WithClusterOptions overrides options for one member cluster of a Fleet:
// the fleet's cluster-level options are applied first, then opts, so a
// heterogeneous fleet (one SAN-backed cluster among atomic ones, one
// instrumented canary, a different algorithm per tenant) is a list of
// overrides away. index is zero-based; fleet-only options cannot nest.
// Fleet-only.
func WithClusterOptions(index int, opts ...Option) Option {
	return func(s *settings) error {
		if s.inOverride {
			return fmt.Errorf("omegasm: WithClusterOptions does not nest")
		}
		if index < 0 {
			return fmt.Errorf("omegasm: cluster override index %d is negative", index)
		}
		s.overrides = append(s.overrides, clusterOverride{index: index, opts: opts})
		s.fleetOpts = append(s.fleetOpts, "WithClusterOptions")
		return nil
	}
}
