package omegasm_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestExportedSymbolsAreDocumented is the docs gate CI runs: every
// exported identifier — functions, types, methods, consts, vars, struct
// fields and interface methods — must carry a doc comment, so `go doc`
// reads as a complete reference. It covers the public package omegasm
// plus the public load-harness and history-checker packages and the
// internal packages other layers program against (internal/consensus,
// internal/engine). It is the dependency-free equivalent of
// `revive -rule exported`.
func TestExportedSymbolsAreDocumented(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string
	report := func(pos token.Pos, what string) {
		missing = append(missing, fmt.Sprintf("%s: %s", fset.Position(pos), what))
	}
	for _, dir := range []string{".", "load", "check", "internal/consensus", "internal/engine"} {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if !d.Name.IsExported() || d.Doc != nil {
							continue
						}
						if d.Recv != nil && !exportedReceiver(d.Recv) {
							continue
						}
						report(d.Pos(), "func "+d.Name.Name)
					case *ast.GenDecl:
						checkGenDecl(d, report)
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// checkGenDecl walks a const/var/type declaration, requiring a doc
// comment on the declaration or on each exported spec, and descending
// into struct fields and interface methods.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
				report(sp.Pos(), "type "+sp.Name.Name)
			}
			if !sp.Name.IsExported() {
				continue
			}
			switch typ := sp.Type.(type) {
			case *ast.StructType:
				for _, f := range typ.Fields.List {
					for _, name := range f.Names {
						if name.IsExported() && f.Doc == nil && f.Comment == nil {
							report(name.Pos(), sp.Name.Name+"."+name.Name)
						}
					}
				}
			case *ast.InterfaceType:
				for _, m := range typ.Methods.List {
					for _, name := range m.Names {
						if name.IsExported() && m.Doc == nil && m.Comment == nil {
							report(name.Pos(), sp.Name.Name+"."+name.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range sp.Names {
				if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					report(name.Pos(), name.Name)
				}
			}
		}
	}
}
