package omegasm_test

import (
	"context"
	"testing"
	"time"

	"omegasm"
)

// shardedOpts is the fast-paced sharded-store configuration the tests run
// with.
func shardedOpts(shards, n int) []omegasm.Option {
	return append(fastOpts(n), omegasm.WithShards(shards))
}

func startSharded(t *testing.T, opts ...omegasm.Option) *omegasm.ShardedKV {
	t.Helper()
	s, err := omegasm.NewShardedKV(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if !s.WaitForAgreement(20 * time.Second) {
		t.Fatal("shards did not elect")
	}
	return s
}

func TestShardedKVValidation(t *testing.T) {
	if _, err := omegasm.NewShardedKV(omegasm.WithShards(0), omegasm.WithN(3)); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := omegasm.NewShardedKV(omegasm.WithShards(2)); err == nil {
		t.Error("sharded store without WithN accepted")
	}
	if _, err := omegasm.NewShardedKV(omegasm.WithShards(2), omegasm.WithN(3),
		omegasm.WithBatchSize(0)); err == nil {
		t.Error("batch size 0 accepted")
	}
	if _, err := omegasm.NewShardedKV(omegasm.WithShards(2), omegasm.WithN(3),
		omegasm.WithShardSlots(0)); err == nil {
		t.Error("0 shard slots accepted")
	}
	if _, err := omegasm.NewShardedKV(omegasm.WithShards(2), omegasm.WithN(3),
		omegasm.WithCheckpointEvery(-1)); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
	if _, err := omegasm.NewShardedKV(omegasm.WithShards(2), omegasm.WithN(3),
		omegasm.WithShardSlots(16), omegasm.WithCheckpointEvery(16)); err == nil {
		t.Error("checkpoint interval equal to the shard window accepted")
	}
	if _, err := omegasm.New(omegasm.WithN(3), omegasm.WithCheckpointEvery(8)); err == nil {
		t.Error("WithCheckpointEvery accepted by New")
	}
	if _, err := omegasm.NewShardedKV(omegasm.WithClusters(2), omegasm.WithN(3)); err == nil {
		t.Error("WithClusters accepted by NewShardedKV")
	}
	// Sharded-only options must not leak into the other constructors.
	if _, err := omegasm.New(omegasm.WithN(3), omegasm.WithShards(2)); err == nil {
		t.Error("WithShards accepted by New")
	}
	if _, err := omegasm.NewFleet(omegasm.WithClusters(2), omegasm.WithN(3),
		omegasm.WithBatchSize(8)); err == nil {
		t.Error("WithBatchSize accepted by NewFleet")
	}
	if _, err := omegasm.New(omegasm.WithN(3), omegasm.WithShardSlots(64)); err == nil {
		t.Error("WithShardSlots accepted by New")
	}
	// Batching packs the proposer id into four bits: 17 processes must be
	// rejected up front, and be accepted with batching off.
	if _, err := omegasm.NewShardedKV(omegasm.WithShards(1), omegasm.WithN(17)); err == nil {
		t.Error("17 processes accepted on a batched shard")
	}
	s, err := omegasm.NewShardedKV(omegasm.WithShards(1), omegasm.WithN(17),
		omegasm.WithBatchSize(1))
	if err != nil {
		t.Errorf("17 processes rejected with batching off: %v", err)
	} else {
		s.Close()
	}
}

// TestShardedKVSustainedStream pushes a stream several times the store's
// total slot capacity through tiny per-shard windows: per-shard
// checkpointing (on by default) must recycle each shard's log so no
// write ever sees ErrLogFull, and the final state reads back exactly.
func TestShardedKVSustainedStream(t *testing.T) {
	const (
		shards = 2
		slots  = 32
	)
	s := startSharded(t, append(shardedOpts(shards, 3),
		omegasm.WithShardSlots(slots), omegasm.WithBatchSize(4))...)
	if s.CheckpointEvery() != slots/4 {
		t.Fatalf("CheckpointEvery() = %d, want the %d default", s.CheckpointEvery(), slots/4)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	writes := 10 * s.Capacity()
	if testing.Short() {
		writes = 4 * s.Capacity()
	}
	const group = 64
	for done := 0; done < writes; {
		n := min(group, writes-done)
		entries := make([]omegasm.Entry, n)
		for j := range entries {
			k := done + j
			entries[j] = omegasm.Entry{Key: uint16(k % 100), Val: uint16(k)}
		}
		if err := s.MultiPut(ctx, entries...); err != nil {
			t.Fatalf("write %d of a sustained stream: %v", done, err)
		}
		done += n
	}
	for k := 0; k < 100; k++ {
		want := uint16(writes - 1 - (writes-1-k)%100)
		if v, ok := s.Get(uint16(k)); !ok || v != want {
			t.Errorf("Get(%d) = (%d, %v), want %d", k, v, ok, want)
		}
	}
	if s.Checkpoints() < 2 {
		t.Fatalf("only %d checkpoints across %d shards over a sustained stream", s.Checkpoints(), shards)
	}
}

func TestShardedKVRoutingIsTotalAndDeterministic(t *testing.T) {
	s, err := omegasm.NewShardedKV(shardedOpts(4, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Shards() != 4 || s.BatchSize() != omegasm.DefaultBatchSize {
		t.Fatalf("Shards=%d BatchSize=%d", s.Shards(), s.BatchSize())
	}
	hit := make([]int, 4)
	for k := 0; k <= 0xFFFF; k++ {
		sh := s.ShardFor(uint16(k))
		if sh < 0 || sh >= 4 {
			t.Fatalf("key %d routed to shard %d", k, sh)
		}
		if sh != s.ShardFor(uint16(k)) {
			t.Fatalf("key %d routing not deterministic", k)
		}
		hit[sh]++
	}
	// The hash must actually spread load: no shard may be starved or hold
	// more than half the key space.
	for sh, n := range hit {
		if n < 1<<12 || n > 1<<15 {
			t.Fatalf("shard %d owns %d of 65536 keys; hash is not spreading", sh, n)
		}
	}
	if s.Shard(-1) != nil || s.Shard(4) != nil {
		t.Error("out-of-range Shard() must be nil")
	}
	if s.Shard(2) == nil {
		t.Error("in-range Shard() must not be nil")
	}
}

// TestShardedKVPutGetAcrossShards is the basic end-to-end flow: writes
// land on their hash-routed shards and reads find them again, through
// both the single-key and the fan-out paths.
func TestShardedKVPutGetAcrossShards(t *testing.T) {
	s := startSharded(t, shardedOpts(3, 3)...)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var entries []omegasm.Entry
	for k := uint16(0); k < 24; k++ {
		entries = append(entries, omegasm.Entry{Key: k, Val: 100 + k})
	}
	if err := s.MultiPut(ctx, entries...); err != nil {
		t.Fatal(err)
	}
	for k := uint16(0); k < 24; k++ {
		if v, ok := s.Get(k); !ok || v != 100+k {
			t.Errorf("Get(%d) = %d, %v", k, v, ok)
		}
	}
	keys := make([]uint16, 25)
	for i := range keys {
		keys[i] = uint16(i)
	}
	vals, ok := s.MultiGet(keys...)
	for i := 0; i < 24; i++ {
		if !ok[i] || vals[i] != 100+uint16(i) {
			t.Errorf("MultiGet[%d] = %d, %v", i, vals[i], ok[i])
		}
	}
	if ok[24] {
		t.Error("MultiGet found a never-written key")
	}
	if s.Len() != 24 {
		t.Errorf("Len() = %d, want 24", s.Len())
	}
	if got := s.Snapshot(); len(got) != 24 || got[3] != 103 {
		t.Errorf("Snapshot() = %v", got)
	}
	// A single Put routes and commits like any KV write.
	if err := s.Put(ctx, 1000, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(1000); !ok || v != 7 {
		t.Errorf("Get(1000) = %d, %v", v, ok)
	}
	// Writes actually spread: at least two shards must have applied
	// something.
	busy := 0
	for i := 0; i < s.Shards(); i++ {
		if s.Shard(i).Applied() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d shards saw traffic; routing is not spreading", busy)
	}
}

// TestShardedKVBatchingPacksSlots: a MultiPut group lands in far fewer
// consensus slots than commands on a batched store — the proposal
// batching the scaling benchmark quantifies.
func TestShardedKVBatchingPacksSlots(t *testing.T) {
	s := startSharded(t, append(shardedOpts(2, 3), omegasm.WithBatchSize(16))...)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var entries []omegasm.Entry
	for k := uint16(0); k < 64; k++ {
		entries = append(entries, omegasm.Entry{Key: k, Val: k})
	}
	if err := s.MultiPut(ctx, entries...); err != nil {
		t.Fatal(err)
	}
	applied, slots := 0, 0
	for i := 0; i < s.Shards(); i++ {
		sh := s.Shard(i)
		applied += sh.Applied()
		slots += sh.SlotsUsed()
	}
	if applied < 64 {
		t.Fatalf("applied %d of 64 writes", applied)
	}
	// With batch 16 and parallel group submission, 64 commands must not
	// have burned anywhere near 64 slots. Allow generous slack for
	// leadership flaps and partial batches.
	if slots*2 >= applied {
		t.Errorf("64 writes used %d slots (applied %d); batching is not engaging", slots, applied)
	}
	// Key 0xFFFF is reserved on batched shards and rejected synchronously.
	if err := s.Put(ctx, 0xFFFF, 1); err == nil {
		t.Error("reserved key accepted on a batched shard")
	}
	if err := s.MultiPut(ctx, omegasm.Entry{Key: 1, Val: 1}, omegasm.Entry{Key: 0xFFFF, Val: 1}); err == nil {
		t.Error("MultiPut with a reserved key reported full success")
	}
}

// TestShardedKVSurvivesShardLeaderCrash: crashing one shard's leader must
// stall only that shard (until its survivors re-elect) and leave the
// other shards' data and write paths untouched.
func TestShardedKVSurvivesShardLeaderCrash(t *testing.T) {
	s := startSharded(t, shardedOpts(2, 4)...)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var entries []omegasm.Entry
	for k := uint16(0); k < 16; k++ {
		entries = append(entries, omegasm.Entry{Key: k, Val: 10 + k})
	}
	if err := s.MultiPut(ctx, entries...); err != nil {
		t.Fatal(err)
	}
	leader, ok := s.Fleet().Leader(0)
	if !ok {
		t.Fatal("shard 0 lost agreement")
	}
	if err := s.Fleet().Crash(0, leader); err != nil {
		t.Fatal(err)
	}
	// Reads keep answering everywhere; the crashed shard's survivors may
	// briefly lag what the dead leader committed (sequential consistency
	// permits the stale prefix), so poll the committed keys up to a
	// deadline rather than demanding instant freshness.
	deadline := time.Now().Add(20 * time.Second)
	for k := uint16(0); k < 16; k++ {
		for {
			if v, ok := s.Get(k); ok && v == 10+k {
				break
			}
			if time.Now().After(deadline) {
				v, ok := s.Get(k)
				t.Fatalf("Get(%d) after crash = %d, %v: survivors never caught up", k, v, ok)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Writes resume on every shard once shard 0's survivors re-elect; the
	// routed Puts retry internally.
	for k := uint16(16); k < 32; k++ {
		if err := s.Put(ctx, k, 10+k); err != nil {
			t.Fatalf("post-crash put %d: %v", k, err)
		}
	}
	for k := uint16(0); k < 32; k++ {
		if v, ok := s.Get(k); !ok || v != 10+k {
			t.Errorf("Get(%d) = %d, %v after failover", k, v, ok)
		}
	}
}

// The fleet edge cases the sharded router relies on.

func TestFleetCrashOutOfRange(t *testing.T) {
	f := startFleet(t, fleetOpts(2, 2)...)
	if _, ok := f.Leader(-1); ok {
		t.Error("out-of-range Leader() reported ok")
	}
	if err := f.Crash(2, 0); err == nil {
		t.Error("out-of-range cluster Crash() accepted")
	}
	if err := f.Crash(-1, 0); err == nil {
		t.Error("negative cluster Crash() accepted")
	}
	if err := f.Crash(0, 5); err == nil {
		t.Error("out-of-range process Crash() accepted")
	}
}

func TestFleetCrashOnStoppedFleet(t *testing.T) {
	f, err := omegasm.NewFleet(fleetOpts(2, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	f.Stop()
	if err := f.Crash(0, 0); err == nil {
		t.Error("Crash on a stopped fleet accepted")
	}
	// Never-started fleets stop (and then refuse crashes) cleanly too.
	f2, err := omegasm.NewFleet(fleetOpts(1, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	f2.Stop()
	if err := f2.Crash(0, 0); err == nil {
		t.Error("Crash on a stopped never-started fleet accepted")
	}
}

// TestFleetWaitForAgreementRacesStop: a WaitForAgreement in flight while
// the fleet stops must return within its timeout (not hang, not panic);
// once the fleet is down it reports no agreement.
func TestFleetWaitForAgreementRacesStop(t *testing.T) {
	f, err := omegasm.NewFleet(fleetOpts(3, 3)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := f.WaitForAgreement(2 * time.Second)
		done <- ok
	}()
	f.Stop()
	select {
	case <-done:
		// Either outcome is legal (the race may resolve before the stop);
		// what matters is that the call returned.
	case <-time.After(10 * time.Second):
		t.Fatal("WaitForAgreement hung across Stop")
	}
	// After Stop the processes are all down: no agreement is reachable.
	if _, ok := f.WaitForAgreement(200 * time.Millisecond); ok {
		t.Error("stopped fleet reported agreement")
	}
}
