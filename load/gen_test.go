package load

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"
)

func baseSpec() Spec {
	return Spec{
		Name:         "t",
		Clients:      8,
		Duration:     2 * time.Second,
		Seed:         42,
		Rate:         2000,
		Process:      Poisson,
		Keys:         256,
		ReadFraction: 0.5,
		Classes: []Class{
			{Name: "interactive", Weight: 0.7, SLO: 20 * time.Millisecond},
			{Name: "batch", Weight: 0.3, SLO: 200 * time.Millisecond},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no clients", func(s *Spec) { s.Clients = 0 }},
		{"no duration", func(s *Spec) { s.Duration = 0 }},
		{"no rate", func(s *Spec) { s.Rate = 0 }},
		{"gamma without shape", func(s *Spec) { s.Process = Gamma }},
		{"weibull without shape", func(s *Spec) { s.Process = Weibull }},
		{"unknown process", func(s *Spec) { s.Process = Process(99) }},
		{"no keys", func(s *Spec) { s.Keys = 0 }},
		{"reserved keys", func(s *Spec) { s.Keys = 0xFFFF }},
		{"zipf s too small", func(s *Spec) { s.ZipfS = 1 }},
		{"read fraction", func(s *Spec) { s.ReadFraction = 1.5 }},
		{"no classes", func(s *Spec) { s.Classes = nil }},
		{"zero weight", func(s *Spec) { s.Classes[0].Weight = 0 }},
		{"zero slo", func(s *Spec) { s.Classes[1].SLO = 0 }},
	}
	for _, tc := range cases {
		s := baseSpec()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, s)
		}
	}
	s := baseSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// TestScheduleDeterministic is the reproducibility criterion: a fixed
// seed expands to the byte-identical request sequence, and a different
// seed to a different one.
func TestScheduleDeterministic(t *testing.T) {
	for _, proc := range []Process{Poisson, Gamma, Weibull} {
		s := baseSpec()
		s.Process = proc
		s.Shape = 0.8
		s.ZipfS = 1.2
		a, err := s.Schedule()
		if err != nil {
			t.Fatalf("%v: %v", proc, err)
		}
		b, err := s.Schedule()
		if err != nil {
			t.Fatalf("%v: %v", proc, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: same seed, different schedules", proc)
		}
		if len(a) == 0 {
			t.Fatalf("%v: empty schedule", proc)
		}
		s.Seed++
		c, err := s.Schedule()
		if err != nil {
			t.Fatalf("%v: %v", proc, err)
		}
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%v: different seeds, identical schedules", proc)
		}
	}
}

func TestScheduleShape(t *testing.T) {
	s := baseSpec()
	reqs, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At }) {
		t.Fatal("schedule not sorted by arrival")
	}
	reads, classCount := 0, make([]int, len(s.Classes))
	for _, r := range reqs {
		if r.At < 0 || r.At >= s.Duration {
			t.Fatalf("arrival %v outside [0, %v)", r.At, s.Duration)
		}
		if int(r.Key) >= s.Keys {
			t.Fatalf("key %d outside [0, %d)", r.Key, s.Keys)
		}
		if r.Class < 0 || r.Class >= len(s.Classes) {
			t.Fatalf("class %d out of range", r.Class)
		}
		if r.Read {
			reads++
		}
		classCount[r.Class]++
	}
	n := float64(len(reqs))
	if f := float64(reads) / n; math.Abs(f-s.ReadFraction) > 0.05 {
		t.Errorf("read fraction %.3f, want ~%.2f", f, s.ReadFraction)
	}
	if f := float64(classCount[0]) / n; math.Abs(f-0.7) > 0.05 {
		t.Errorf("class 0 share %.3f, want ~0.7", f)
	}
}

// TestScheduleArrivalRate checks each process hits the configured
// aggregate rate: the shape parameter redistributes variance without
// changing the mean.
func TestScheduleArrivalRate(t *testing.T) {
	for _, tc := range []struct {
		proc  Process
		shape float64
	}{
		{Poisson, 0}, {Gamma, 0.5}, {Gamma, 4}, {Weibull, 0.7}, {Weibull, 2},
	} {
		s := baseSpec()
		s.Process = tc.proc
		s.Shape = tc.shape
		s.Duration = 10 * time.Second
		reqs, err := s.Schedule()
		if err != nil {
			t.Fatalf("%v(%v): %v", tc.proc, tc.shape, err)
		}
		got := float64(len(reqs)) / s.Duration.Seconds()
		if math.Abs(got-s.Rate)/s.Rate > 0.05 {
			t.Errorf("%v(shape %v): rate %.0f/s, want ~%.0f/s", tc.proc, tc.shape, got, s.Rate)
		}
	}
}

// TestScheduleBurstiness checks the shape parameter has its documented
// effect on interarrival variability: the coefficient of variation of a
// single client's gaps is ~1 for Poisson, above for Gamma shape < 1,
// below for Gamma shape > 1.
func TestScheduleBurstiness(t *testing.T) {
	cv := func(proc Process, shape float64) float64 {
		s := baseSpec()
		s.Clients = 1
		s.Rate = 2000
		s.Duration = 20 * time.Second
		s.Process = proc
		s.Shape = shape
		reqs, err := s.Schedule()
		if err != nil {
			t.Fatalf("%v(%v): %v", proc, shape, err)
		}
		var gaps []float64
		for i := 1; i < len(reqs); i++ {
			gaps = append(gaps, (reqs[i].At - reqs[i-1].At).Seconds())
		}
		var mean float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		var ss float64
		for _, g := range gaps {
			d := g - mean
			ss += d * d
		}
		return math.Sqrt(ss/float64(len(gaps))) / mean
	}
	if c := cv(Poisson, 0); math.Abs(c-1) > 0.1 {
		t.Errorf("Poisson cv = %.3f, want ~1", c)
	}
	if c := cv(Gamma, 0.25); c < 1.5 {
		t.Errorf("Gamma(0.25) cv = %.3f, want bursty (> 1.5)", c)
	}
	if c := cv(Gamma, 4); c > 0.7 {
		t.Errorf("Gamma(4) cv = %.3f, want smooth (< 0.7)", c)
	}
	if c := cv(Weibull, 0.5); c < 1.5 {
		t.Errorf("Weibull(0.5) cv = %.3f, want bursty (> 1.5)", c)
	}
}

// TestScheduleZipfSkew checks Zipf key selection concentrates load: the
// hottest key of a skewed draw takes a large share, while the uniform
// draw spreads it thin.
func TestScheduleZipfSkew(t *testing.T) {
	share := func(zipfS float64) float64 {
		s := baseSpec()
		s.ZipfS = zipfS
		s.Duration = 10 * time.Second
		reqs, err := s.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		counts := map[uint16]int{}
		for _, r := range reqs {
			counts[r.Key]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(reqs))
	}
	if hot := share(1.5); hot < 0.2 {
		t.Errorf("Zipf(1.5) hottest-key share = %.3f, want > 0.2", hot)
	}
	if flat := share(0); flat > 0.05 {
		t.Errorf("uniform hottest-key share = %.3f, want < 0.05", flat)
	}
}
