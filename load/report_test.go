package load

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestBuildReport(t *testing.T) {
	spec := baseSpec()
	spec.Duration = time.Second
	results := []Result{
		{Latency: 5 * time.Millisecond, Class: 0},
		{Latency: 30 * time.Millisecond, Class: 0},  // misses class 0's 20ms SLO
		{Latency: 100 * time.Millisecond, Class: 1}, // within class 1's 200ms SLO
		{Latency: -1, Class: 1},                     // never completed
	}
	rep := BuildReport("sim", &spec, results)
	if rep.Requests != 4 || rep.Completed != 3 {
		t.Fatalf("requests/completed = %d/%d", rep.Requests, rep.Completed)
	}
	c0, c1 := rep.Classes[0], rep.Classes[1]
	if c0.Requests != 2 || c0.Completed != 2 || math.Abs(c0.Attainment-0.5) > 1e-9 {
		t.Fatalf("class 0 = %+v", c0)
	}
	if c1.Requests != 2 || c1.Completed != 1 || math.Abs(c1.Attainment-0.5) > 1e-9 {
		t.Fatalf("class 1 = %+v", c1)
	}
	if rep.Throughput != 3 || rep.Goodput != 2 {
		t.Fatalf("throughput/goodput = %v/%v", rep.Throughput, rep.Goodput)
	}
	if c0.P50 < 4*time.Millisecond || c0.P999 > 31*time.Millisecond {
		t.Fatalf("class 0 percentiles: p50=%v p999=%v", c0.P50, c0.P999)
	}
	if rep.JainFairness <= 0 || rep.JainFairness > 1 {
		t.Fatalf("fairness = %v", rep.JainFairness)
	}
	if out := rep.String(); !strings.Contains(out, "interactive") || !strings.Contains(out, "p999") {
		t.Fatalf("String() = %q", out)
	}
}

func TestCalibrate(t *testing.T) {
	spec := baseSpec()
	mk := func(scale float64) *Report {
		rep := &Report{Classes: make([]ClassReport, len(spec.Classes))}
		for i := range rep.Classes {
			base := time.Duration(i+1) * 10 * time.Millisecond
			rep.Classes[i] = ClassReport{
				P50:  time.Duration(scale * float64(base)),
				P95:  time.Duration(scale * float64(2*base)),
				P99:  time.Duration(scale * float64(3*base)),
				P999: time.Duration(scale * float64(4*base)),
			}
		}
		return rep
	}
	self := Calibrate(mk(1), mk(1))
	if self.MAPEPct != 0 || math.Abs(self.PearsonR-1) > 1e-9 || self.Pairs != 8 {
		t.Fatalf("self-calibration = %+v", self)
	}
	off := Calibrate(mk(1.1), mk(1))
	if math.Abs(off.MAPEPct-10) > 1e-6 {
		t.Fatalf("10%%-off MAPE = %v", off.MAPEPct)
	}
	if math.Abs(off.PearsonR-1) > 1e-9 {
		t.Fatalf("proportional reports should correlate perfectly, r = %v", off.PearsonR)
	}
}

// TestRunSimDeterministic runs a small spec against the simulated
// substrate twice: identical reports, and a sane completion picture.
func TestRunSimDeterministic(t *testing.T) {
	spec := baseSpec()
	spec.Clients = 4
	spec.Rate = 200
	spec.Duration = 500 * time.Millisecond
	a, err := RunSim(&spec, SimOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(&spec, SimOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests == 0 {
		t.Fatal("vacuous: no requests ran")
	}
	if a.Completed < a.Requests*9/10 {
		t.Fatalf("only %d/%d completed", a.Completed, a.Requests)
	}
	if !reflectEqualReports(a, b) {
		t.Fatalf("same spec, different sim reports:\n%+v\n%+v", a, b)
	}
}

func reflectEqualReports(a, b Report) bool {
	if a.Mode != b.Mode || a.Requests != b.Requests || a.Completed != b.Completed ||
		a.Throughput != b.Throughput || a.Goodput != b.Goodput || a.JainFairness != b.JainFairness ||
		len(a.Classes) != len(b.Classes) {
		return false
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			return false
		}
	}
	return true
}

// TestRunLiveSmokeTarget drives the live runner against an in-process
// fake to check open-loop accounting without a full cluster.
func TestRunLiveSmokeTarget(t *testing.T) {
	spec := baseSpec()
	spec.Clients = 4
	spec.Rate = 400
	spec.Duration = 250 * time.Millisecond
	rep, err := RunLive(&spec, fakeTarget{}, LiveOptions{Drain: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Completed != rep.Requests {
		t.Fatalf("completed %d of %d", rep.Completed, rep.Requests)
	}
	for _, c := range rep.Classes {
		if c.Completed > 0 && c.P50 <= 0 {
			t.Fatalf("class %q p50 = %v", c.Name, c.P50)
		}
	}
}

type fakeTarget struct{}

func (fakeTarget) Put(ctx context.Context, key, val uint16) error { return nil }

func (fakeTarget) Get(key uint16) (uint16, bool) { return 0, false }
