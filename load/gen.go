package load

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Schedule expands the spec into its concrete arrival sequence, sorted
// by arrival time. The expansion is a pure function of the spec: the
// same spec (Seed included) yields the byte-identical schedule, which
// is what lets the simulated and live runners replay the exact same
// workload.
func (s *Spec) Schedule() ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var zipf *rand.Zipf
	if s.ZipfS > 0 {
		zipf = rand.NewZipf(rng, s.ZipfS, 1, uint64(s.Keys-1))
	}
	cum := make([]float64, len(s.Classes))
	var total float64
	for i, c := range s.Classes {
		total += c.Weight
		cum[i] = total
	}
	perClient := s.Rate / float64(s.Clients)
	var reqs []Request
	var val uint16
	// One renewal process per client, expanded in fixed client order
	// from the single seeded rng; the stable sort below merges them
	// without reordering equal arrival times.
	for client := 0; client < s.Clients; client++ {
		at := time.Duration(0)
		for {
			gap := s.interarrival(rng, perClient)
			at += gap
			if at >= s.Duration {
				break
			}
			var key uint16
			if zipf != nil {
				key = uint16(zipf.Uint64())
			} else {
				key = uint16(rng.Intn(s.Keys))
			}
			class := 0
			x := rng.Float64() * total
			for i, c := range cum {
				if x < c {
					class = i
					break
				}
			}
			read := rng.Float64() < s.ReadFraction
			val++
			reqs = append(reqs, Request{At: at, Key: key, Val: val, Read: read, Class: class, Client: client})
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
	return reqs, nil
}

// interarrival draws one gap of a client's renewal process running at
// rate arrivals per second, with mean 1/rate regardless of process
// shape (the shape redistributes variance, not throughput).
func (s *Spec) interarrival(rng *rand.Rand, rate float64) time.Duration {
	var gapSec float64
	switch s.Process {
	case Gamma:
		// Gamma(k) scaled so the mean is k·θ = 1/rate.
		gapSec = gammaSample(rng, s.Shape) / (s.Shape * rate)
	case Weibull:
		// Inverse transform: scale·(-ln U)^(1/k), with the scale chosen
		// so the mean scale·Γ(1+1/k) is 1/rate.
		scale := 1 / (rate * math.Gamma(1+1/s.Shape))
		u := 1 - rng.Float64() // (0, 1]
		gapSec = scale * math.Pow(-math.Log(u), 1/s.Shape)
	default: // Poisson
		gapSec = rng.ExpFloat64() / rate
	}
	return time.Duration(gapSec * float64(time.Second))
}

// gammaSample draws from Gamma(k, 1) by Marsaglia–Tsang squeeze
// rejection, with the standard U^(1/k) boost for k < 1.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := 1 - rng.Float64() // (0, 1]: the boost must not multiply by zero
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
