package load

import (
	"fmt"
	"math"
	"strings"
	"time"

	"omegasm/internal/stats"
)

// Result is one executed request's outcome, produced by either runner.
type Result struct {
	// At is the request's scheduled arrival offset.
	At time.Duration
	// Latency is the time from scheduled arrival to completion, or -1
	// if the request never completed inside the run (it still counts
	// against attainment — an unanswered request missed its SLO).
	Latency time.Duration
	// Read echoes the scheduled request's Read flag.
	Read bool
	// Class echoes the scheduled request's class index.
	Class int
}

// ClassReport aggregates one SLO class's outcomes.
type ClassReport struct {
	// Name echoes the spec class's name.
	Name string
	// SLO echoes the spec class's latency target.
	SLO time.Duration
	// Requests and Completed count scheduled and completed requests.
	Requests, Completed int
	// Attainment is the fraction of scheduled requests that completed
	// within SLO.
	Attainment float64
	// Goodput is within-SLO completions per second of workload duration.
	Goodput float64
	// Mean is the mean completed-request latency.
	Mean time.Duration
	// P50 through P999 are completed-request latency percentiles, from a
	// mergeable log-bucketed histogram (within ~1.6% of the exact
	// sorted-sample values).
	P50, P95, P99, P999 time.Duration
}

// Report is one runner's aggregate view of a workload execution.
type Report struct {
	// Mode names the runner: "sim" or "live".
	Mode string
	// Spec echoes the workload's name.
	Spec string
	// Duration is the spec's arrival window.
	Duration time.Duration
	// Requests and Completed count all classes together.
	Requests, Completed int
	// Throughput is completions per second of workload duration.
	Throughput float64
	// Goodput is within-SLO completions per second of workload duration.
	Goodput float64
	// JainFairness is Jain's index over the classes' weight-normalized
	// goodput: 1 when every class gets goodput proportional to its
	// weight.
	JainFairness float64
	// Classes holds the per-class breakdowns, indexed like Spec.Classes.
	Classes []ClassReport
}

// BuildReport aggregates per-request results into per-class histograms
// and SLO accounting. The results slice must use class indexes valid
// for the spec.
func BuildReport(mode string, spec *Spec, results []Result) Report {
	rep := Report{
		Mode:     mode,
		Spec:     spec.Name,
		Duration: spec.Duration,
		Classes:  make([]ClassReport, len(spec.Classes)),
	}
	hists := make([]*stats.Histogram, len(spec.Classes))
	good := make([]int, len(spec.Classes))
	for i, c := range spec.Classes {
		rep.Classes[i] = ClassReport{Name: c.Name, SLO: c.SLO}
		hists[i] = &stats.Histogram{}
	}
	secs := spec.Duration.Seconds()
	for _, r := range results {
		cr := &rep.Classes[r.Class]
		cr.Requests++
		rep.Requests++
		if r.Latency < 0 {
			continue
		}
		cr.Completed++
		rep.Completed++
		hists[r.Class].Record(int64(r.Latency))
		if r.Latency <= cr.SLO {
			good[r.Class]++
		}
	}
	shares := make([]float64, len(spec.Classes))
	var goodTotal int
	for i := range rep.Classes {
		cr := &rep.Classes[i]
		h := hists[i]
		if cr.Requests > 0 {
			cr.Attainment = float64(good[i]) / float64(cr.Requests)
		}
		cr.Goodput = float64(good[i]) / secs
		cr.Mean = time.Duration(h.Mean())
		cr.P50 = time.Duration(h.Quantile(50))
		cr.P95 = time.Duration(h.Quantile(95))
		cr.P99 = time.Duration(h.Quantile(99))
		cr.P999 = time.Duration(h.Quantile(99.9))
		shares[i] = cr.Goodput / spec.Classes[i].Weight
		goodTotal += good[i]
	}
	rep.Throughput = float64(rep.Completed) / secs
	rep.Goodput = float64(goodTotal) / secs
	rep.JainFairness = stats.JainFairness(shares)
	return rep
}

// Calibration scores how well one report's percentiles predict
// another's — in practice, the sim report against the live report of
// the same spec.
type Calibration struct {
	// MAPEPct is the mean absolute percentage error over the paired
	// per-class p50/p95/p99/p999 values, in percent.
	MAPEPct float64
	// PearsonR is Pearson's correlation over the same pairs.
	PearsonR float64
	// Pairs counts the percentile pairs compared.
	Pairs int
}

// Calibrate compares the sim report's per-class latency percentiles
// against the live report's. Both reports must come from the same spec
// (same classes in the same order).
func Calibrate(sim, live *Report) Calibration {
	var pred, actual []float64
	n := len(sim.Classes)
	if len(live.Classes) < n {
		n = len(live.Classes)
	}
	for i := 0; i < n; i++ {
		s, l := sim.Classes[i], live.Classes[i]
		for _, p := range [][2]time.Duration{{s.P50, l.P50}, {s.P95, l.P95}, {s.P99, l.P99}, {s.P999, l.P999}} {
			pred = append(pred, float64(p[0]))
			actual = append(actual, float64(p[1]))
		}
	}
	return Calibration{
		MAPEPct:  stats.MAPE(pred, actual),
		PearsonR: stats.PearsonR(pred, actual),
		Pairs:    len(pred),
	}
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %q: %d/%d completed, %.0f/s throughput, %.0f/s goodput, fairness %.3f\n",
		r.Mode, r.Spec, r.Completed, r.Requests, r.Throughput, r.Goodput, r.JainFairness)
	t := &stats.Table{
		Header: []string{"class", "slo", "reqs", "done", "attain", "p50", "p95", "p99", "p999"},
	}
	for _, c := range r.Classes {
		t.AddRow(c.Name, c.SLO.String(), stats.I(c.Requests), stats.I(c.Completed),
			fmt.Sprintf("%.3f", c.Attainment),
			durCell(c.P50), durCell(c.P95), durCell(c.P99), durCell(c.P999))
	}
	b.WriteString(t.Render())
	return b.String()
}

// durCell formats a latency for table cells, in milliseconds.
func durCell(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	if math.IsNaN(ms) {
		return "-"
	}
	return fmt.Sprintf("%.2fms", ms)
}
