//omegalint:allow simdet the live runner is wall-clock by design: it paces arrivals with real sleeps and fans requests out on goroutines; only RunSim carries the determinism obligation.

package load

import (
	"context"
	"sync"
	"time"
)

// Target is the store surface the live runner drives: both omegasm.KV
// and omegasm.ShardedKV satisfy it.
type Target interface {
	// Put replicates one write; it returns once the write is committed
	// and applied, or fails with the context's error.
	Put(ctx context.Context, key, val uint16) error
	// Get serves one key from local applied state.
	Get(key uint16) (uint16, bool)
}

// LiveOptions parameterizes a live execution.
type LiveOptions struct {
	// Drain is how long to wait past the arrival window for outstanding
	// requests; default 2s. Requests still incomplete after the drain
	// are cancelled and reported with Latency -1.
	Drain time.Duration
}

// RunLive executes the spec open-loop against a live store on the wall
// clock: each request is issued at its scheduled arrival regardless of
// earlier completions, and its latency is measured from the scheduled
// arrival time — a dispatcher running late charges the delay to the
// request, not to thin air (no coordinated omission).
func RunLive(spec *Spec, target Target, opt LiveOptions) (Report, error) {
	rep, _, err := RunLiveResults(spec, target, opt)
	return rep, err
}

// RunLiveResults is RunLive returning the raw per-request results
// alongside the aggregate report, for analyses the report doesn't
// pre-compute (time-windowed percentiles around a fault, per-key
// breakdowns).
func RunLiveResults(spec *Spec, target Target, opt LiveOptions) (Report, []Result, error) {
	schedule, err := spec.Schedule()
	if err != nil {
		return Report{}, nil, err
	}
	drain := opt.Drain
	if drain == 0 {
		drain = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), spec.Duration+drain)
	defer cancel()

	results := make([]Result, len(schedule))
	var wg sync.WaitGroup
	start := time.Now()
	for i, r := range schedule {
		if d := time.Until(start.Add(r.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			arrival := start.Add(r.At)
			lat := time.Duration(-1)
			if r.Read {
				target.Get(r.Key)
				lat = time.Since(arrival)
			} else if target.Put(ctx, r.Key, r.Val) == nil {
				lat = time.Since(arrival)
			}
			results[i] = Result{At: r.At, Latency: lat, Read: r.Read, Class: r.Class}
		}(i, r)
	}
	wg.Wait()
	return BuildReport("live", spec, results), results, nil
}
