package load

import (
	"fmt"
	"time"

	"omegasm"
)

// TickDuration is the wall-clock meaning of one virtual tick: the sim
// engine's convention throughout the repo is 1 tick = 1µs, so simulated
// latencies convert to durations by this factor.
const TickDuration = time.Microsecond

// SimOptions parameterizes the simulated substrate a workload runs
// against. The zero value is a 1-shard, 3-process cluster with the
// package defaults for slots, batching and checkpointing.
type SimOptions struct {
	// Shards is the number of hash partitions; default 1.
	Shards int
	// N is the number of processes per shard; default 3.
	N int
	// Slots is each shard's replicated-log capacity; 0 picks the sim
	// default.
	Slots int
	// BatchSize is each shard's proposal batch size; 0 picks the
	// default, 1 turns batching off.
	BatchSize int
	// CheckpointEvery is the sealing cadence in slots; 0 picks the
	// default, negative disables checkpointing.
	CheckpointEvery int
	// Crashes schedules process crashes, in virtual ticks.
	Crashes []omegasm.SimShardCrash
	// DrainTicks extends the horizon past the arrival window so late
	// requests can complete; default 200_000 ticks (200ms of virtual
	// time).
	DrainTicks int64
}

// RunSim executes the spec open-loop against a simulated sharded store
// under virtual time. The run is deterministic: the same spec and
// options produce the byte-identical report, and host speed never leaks
// into the measured latencies. Arrivals map to virtual ticks at
// TickDuration resolution.
func RunSim(spec *Spec, opt SimOptions) (Report, error) {
	schedule, err := spec.Schedule()
	if err != nil {
		return Report{}, err
	}
	shards := opt.Shards
	if shards == 0 {
		shards = 1
	}
	n := opt.N
	if n == 0 {
		n = 3
	}
	drain := opt.DrainTicks
	if drain == 0 {
		drain = 200_000
	}
	reqs := make([]omegasm.SimRequest, len(schedule))
	for i, r := range schedule {
		reqs[i] = omegasm.SimRequest{
			At:     int64(r.At / TickDuration),
			Key:    r.Key,
			Val:    r.Val,
			Read:   r.Read,
			Class:  r.Class,
			Client: r.Client,
		}
	}
	res, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards:          shards,
		N:               n,
		Seed:            spec.Seed,
		Horizon:         int64(spec.Duration/TickDuration) + drain,
		Slots:           opt.Slots,
		BatchSize:       opt.BatchSize,
		CheckpointEvery: opt.CheckpointEvery,
		Crashes:         opt.Crashes,
		Requests:        reqs,
	})
	if err != nil {
		return Report{}, fmt.Errorf("load: sim run: %w", err)
	}
	results := make([]Result, len(res.Requests))
	for i, rr := range res.Requests {
		lat := time.Duration(-1)
		if rr.Done >= 0 {
			lat = time.Duration(rr.Done-rr.At) * TickDuration
		}
		results[i] = Result{
			At:      time.Duration(rr.At) * TickDuration,
			Latency: lat,
			Read:    rr.Read,
			Class:   rr.Class,
		}
	}
	return BuildReport("sim", spec, results), nil
}
