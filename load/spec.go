package load

import (
	"fmt"
	"time"
)

// Process selects the interarrival distribution of each client's
// renewal process.
type Process int

const (
	// Poisson draws exponential interarrivals — memoryless arrivals, the
	// M/·/· baseline.
	Poisson Process = iota
	// Gamma draws Gamma(Shape)-distributed interarrivals: Shape < 1 is
	// burstier than Poisson, Shape > 1 smoother.
	Gamma
	// Weibull draws Weibull(Shape)-distributed interarrivals: Shape < 1
	// yields heavy-tailed gaps (clustered arrivals), Shape > 1 regular
	// pacing.
	Weibull
)

// String names the process for reports and tables.
func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Gamma:
		return "gamma"
	case Weibull:
		return "weibull"
	}
	return fmt.Sprintf("process(%d)", int(p))
}

// Class is one SLO class of a workload: a share of the request stream
// with its own latency target.
type Class struct {
	// Name labels the class in reports ("interactive", "batch").
	Name string
	// Weight is the class's relative share of requests (> 0; weights
	// need not sum to 1).
	Weight float64
	// SLO is the class's latency target: a request completing within SLO
	// of its scheduled arrival counts toward attainment and goodput.
	SLO time.Duration
}

// Spec is a declarative workload: who arrives, when, for which keys,
// and what latency each class was promised. The same Spec always
// expands to the same schedule (Seed included), so the simulated and
// live runners execute identical request sequences.
type Spec struct {
	// Name labels the workload in reports.
	Name string
	// Clients is the size of the client population; arrivals are the
	// superposition of this many independent renewal processes, each
	// running at Rate/Clients.
	Clients int
	// Duration is how long arrivals keep coming.
	Duration time.Duration
	// Seed makes the schedule reproducible and drives the simulated
	// run's scheduling adversary.
	Seed int64
	// Rate is the aggregate arrival rate in requests per second.
	Rate float64
	// Process shapes each client's interarrival distribution.
	Process Process
	// Shape is the Gamma/Weibull shape parameter k (> 0); ignored for
	// Poisson.
	Shape float64
	// Keys is the key-space size: keys are drawn from [0, Keys). At most
	// 0xFFFE, keeping clear of the store's reserved 0xFFFF row.
	Keys int
	// ZipfS skews key popularity: 0 draws keys uniformly, a value > 1 is
	// the Zipf exponent s (smaller keys hotter, larger s more skewed).
	ZipfS float64
	// ReadFraction is the probability in [0, 1] that a request is a
	// read.
	ReadFraction float64
	// Classes partitions the stream into SLO classes by weight; at least
	// one is required.
	Classes []Class
}

// Request is one scheduled arrival of an expanded workload.
type Request struct {
	// At is the arrival offset from the run's start.
	At time.Duration
	// Key and Val form the command for a write; reads use Key only.
	Key, Val uint16
	// Read selects a read instead of a replicated write.
	Read bool
	// Class indexes Spec.Classes.
	Class int
	// Client identifies the issuing client (0..Spec.Clients-1). The
	// simulator's session checks (monotone reads per client) key on it.
	Client int
}

// Validate reports the first problem with the spec, or nil.
func (s *Spec) Validate() error {
	if s.Clients < 1 {
		return fmt.Errorf("load: Clients = %d, need >= 1", s.Clients)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("load: Duration = %v, need > 0", s.Duration)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("load: Rate = %v, need > 0", s.Rate)
	}
	switch s.Process {
	case Poisson:
	case Gamma, Weibull:
		if s.Shape <= 0 {
			return fmt.Errorf("load: %v process needs Shape > 0, got %v", s.Process, s.Shape)
		}
	default:
		return fmt.Errorf("load: unknown Process %d", int(s.Process))
	}
	if s.Keys < 1 || s.Keys > 0xFFFE {
		return fmt.Errorf("load: Keys = %d, need 1..%d (0xFFFF is reserved)", s.Keys, 0xFFFE)
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("load: ZipfS = %v, need 0 (uniform) or > 1", s.ZipfS)
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return fmt.Errorf("load: ReadFraction = %v, need 0..1", s.ReadFraction)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("load: need at least one SLO class")
	}
	for i, c := range s.Classes {
		if c.Weight <= 0 {
			return fmt.Errorf("load: class %d (%q) Weight = %v, need > 0", i, c.Name, c.Weight)
		}
		if c.SLO <= 0 {
			return fmt.Errorf("load: class %d (%q) SLO = %v, need > 0", i, c.Name, c.SLO)
		}
	}
	return nil
}
