// Package load turns a declarative workload specification into
// open-loop request schedules and executes them — identically — against
// the simulated stack (SimKV/SimShardedKV under virtual time) and the
// live stack (KV/ShardedKV on the wall clock), reporting per-SLO-class
// latency percentiles, goodput, attainment and fairness, plus a
// sim-versus-live calibration score.
//
// # Specs
//
// A Spec describes a client population (Clients), an aggregate arrival
// rate (Rate) shaped by a renewal Process (Poisson, Gamma or Weibull
// interarrivals), a key space with optional Zipf skew (Keys, ZipfS), a
// read/write mix (ReadFraction) and a set of SLO Classes with weights
// and latency targets. Schedule expands the spec into a concrete,
// seed-reproducible []Request: the same Spec (including Seed) always
// yields the byte-identical schedule, so the sim and live runners
// replay exactly the same arrival sequence.
//
// # Open loop
//
// Both runners are open-loop: each request is issued at its scheduled
// arrival time regardless of whether earlier requests have completed,
// and latency is measured from the scheduled arrival — never from the
// moment a client thread got around to sending. This avoids coordinated
// omission: a server that stalls accrues the stall in every latency
// sample that queued behind it, which is what the tail percentiles are
// for.
//
// # Reports and calibration
//
// Per-request latencies feed mergeable log-bucketed histograms
// (internal/stats.Histogram); a Report carries p50/p95/p99/p999 per
// class, within-SLO attainment and goodput, and Jain's fairness index
// across the classes' weight-normalized goodput. Calibrate compares a
// sim Report against a live Report of the same Spec and scores the
// sim's predictive power with MAPE and Pearson's r over the paired
// per-class percentiles — the observe-predict-calibrate loop that keeps
// virtual-time capacity planning honest.
package load
