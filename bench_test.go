// Benchmarks: one per regenerated figure/table (running the corresponding
// harness experiment end to end and reporting its headline metric), plus
// micro-benchmarks of the hot paths (task bodies and register accesses).
//
// Run with:
//
//	go test -bench=. -benchmem
package omegasm_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"omegasm"
	"omegasm/internal/consensus"
	"omegasm/internal/core"
	"omegasm/internal/harness"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

// benchExperiment runs one harness experiment per iteration and fails the
// benchmark if any paper verdict fails: the benches double as full-scale
// reproduction checks.
func benchExperiment(b *testing.B, id string) {
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{Quick: true, Seeds: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Report.AllOK() {
			b.Fatalf("verdicts failed:\n%s", out.Report)
		}
	}
}

// BenchmarkFig1TimerDominance regenerates Figure 1 (AWB timer dominance).
func BenchmarkFig1TimerDominance(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkFig2Election regenerates Figure 2 / Theorem 1 (eventual
// leadership across sizes, seeds and crash patterns).
func BenchmarkFig2Election(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkFig3WriteGaps regenerates Figure 3 (the leader's delta-timely
// critical-write sequence).
func BenchmarkFig3WriteGaps(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkFig4LowerBound regenerates Figure 4 / Theorem 5 (the bounded-
// memory adversary).
func BenchmarkFig4LowerBound(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkFig5Bounded regenerates Figure 5 / Theorems 6-7 (bounded
// variables; post-stabilization write set).
func BenchmarkFig5Bounded(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkThm3WriteEfficiency regenerates Theorems 2-3 (Algorithm 1's
// single eventual writer).
func BenchmarkThm3WriteEfficiency(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkLemma56 regenerates Lemmas 5-6 (windowed writer/reader census).
func BenchmarkLemma56(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkTableOptimality regenerates the cross-algorithm trade-off
// table (Section 3.4 / Conclusion).
func BenchmarkTableOptimality(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkVariants regenerates the Section 3.5 variants comparison.
func BenchmarkVariants(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkSweeps regenerates the sensitivity sweeps.
func BenchmarkSweeps(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkConsensus regenerates the Omega-driven replicated log.
func BenchmarkConsensus(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkComplexityCensus regenerates the read/write cost table.
func BenchmarkComplexityCensus(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkAblationStop regenerates the STOP-register ablation.
func BenchmarkAblationStop(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkAblationLeaderNoRead regenerates the Section 5 open-question
// probe.
func BenchmarkAblationLeaderNoRead(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkLeaderChasingAdversary regenerates the AWB1-necessity
// experiment.
func BenchmarkLeaderChasingAdversary(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkElectionLatencyByN reports the median election latency (in
// virtual ticks) per system size as a custom metric.
func BenchmarkElectionLatencyByN(b *testing.B) {
	for _, n := range []int{3, 5, 8, 16} {
		n := n
		b.Run(stats.I(n), func(b *testing.B) {
			var total int64
			runs := 0
			for i := 0; i < b.N; i++ {
				p := harness.Preset{
					Algo: harness.AlgoWriteEfficient, N: n,
					Seed: int64(i + 1), Horizon: 100_000,
					AWBProc: 0, Tau1: 1_000, Delta: 8,
				}
				out, err := harness.Execute(p)
				if err != nil {
					b.Fatal(err)
				}
				if out.Stable {
					total += out.StabTime
					runs++
				}
			}
			if runs > 0 {
				b.ReportMetric(float64(total)/float64(runs), "ticks/election")
			}
		})
	}
}

// --- micro-benchmarks of the hot paths ---

func benchSteps(b *testing.B, build func(mem shmem.Mem, n int) []core.Proc) {
	const n = 8
	mem := shmem.NewSimMem(n)
	procs := build(mem, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs[i%n].Step(int64(i))
	}
}

// BenchmarkAlgo1Step measures one T2 iteration of Algorithm 1 (n=8),
// including the leader computation's suspicion scan.
func BenchmarkAlgo1Step(b *testing.B) {
	benchSteps(b, func(mem shmem.Mem, n int) []core.Proc {
		ps := core.BuildAlgo1(mem, n)
		out := make([]core.Proc, n)
		for i, p := range ps {
			out[i] = p
		}
		return out
	})
}

// BenchmarkAlgo2Step measures one T2 iteration of Algorithm 2 (n=8),
// including the handshake re-signalling.
func BenchmarkAlgo2Step(b *testing.B) {
	benchSteps(b, func(mem shmem.Mem, n int) []core.Proc {
		ps := core.BuildAlgo2(mem, n)
		out := make([]core.Proc, n)
		for i, p := range ps {
			out[i] = p
		}
		return out
	})
}

// BenchmarkAlgo1OnTimer measures one T3 firing of Algorithm 1 (n=8).
func BenchmarkAlgo1OnTimer(b *testing.B) {
	const n = 8
	mem := shmem.NewSimMem(n)
	procs := core.BuildAlgo1(mem, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs[i%n].OnTimer(int64(i))
	}
}

// BenchmarkLeaderQuery measures the cached oracle query (must be trivial:
// it reads no shared memory).
func BenchmarkLeaderQuery(b *testing.B) {
	mem := shmem.NewSimMem(4)
	procs := core.BuildAlgo1(mem, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = procs[0].Leader()
	}
}

// BenchmarkSimRegister measures the instrumented simulation register.
func BenchmarkSimRegister(b *testing.B) {
	mem := shmem.NewSimMem(2)
	r := mem.Word(0, "PROGRESS", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(0, uint64(i))
		_ = r.Read(1)
	}
}

// BenchmarkAtomicRegister measures the live register without counting.
func BenchmarkAtomicRegister(b *testing.B) {
	mem := shmem.NewAtomicMem(2, false)
	r := mem.Word(0, "PROGRESS", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(0, uint64(i))
		_ = r.Read(1)
	}
}

// BenchmarkCensusContention compares instrumented register-access
// throughput under the retired global-mutex census and the lock-free
// census, with 8 concurrent processes hammering the registers while a
// monitor snapshots (the shape of an instrumented, stats-polled cluster).
// `go test -bench CensusContention` shows the ns/op gap; the calibrated
// throughput/speedup numbers come from `omegabench -bench`.
func BenchmarkCensusContention(b *testing.B) {
	const procs = 8
	b.Run("mutex", func(b *testing.B) {
		benchContended(b, harness.MutexCensusWorkload(procs))
	})
	b.Run("lockfree", func(b *testing.B) {
		benchContended(b, harness.LockFreeCensusWorkload(procs))
	})
}

// benchContended splits b.N iterations across the workload's goroutines
// with a concurrent snapshot monitor polling every 100us (a realistic
// stats poller); one iteration is one write plus a procs-wide read scan.
func benchContended(b *testing.B, w harness.CensusWorkload) {
	b.ReportAllocs()
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		ticker := time.NewTicker(100 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				w.Snapshot()
			}
		}
	}()
	per := b.N/w.Procs + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for pid := 0; pid < w.Procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				w.Access(pid, k)
			}
		}(pid)
	}
	wg.Wait()
	b.StopTimer()
	close(stop)
	monWG.Wait()
}

// BenchmarkFleetLeaderQueries measures the Fleet's cached Leader fast
// path: 4 running clusters of 3 processes each, queried from parallel
// goroutines. The answer is one atomic load, so ns/op should stay flat no
// matter how many queriers pile on.
func BenchmarkFleetLeaderQueries(b *testing.B) {
	f, err := omegasm.NewFleet(
		omegasm.WithClusters(4),
		omegasm.WithN(3),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Start(); err != nil {
		b.Fatal(err)
	}
	defer f.Stop()
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		b.Fatal("fleet did not agree")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			// Transient anarchy (ok=false) is legitimate — Omega is only
			// eventually stable — so only validate the answer's range.
			if l, ok := f.Leader(i & 3); ok && (l < 0 || l >= 3) {
				b.Errorf("leader out of range: %d", l)
				return
			}
			i++
		}
	})
}

// BenchmarkKVThroughput measures the public replicated key-value store:
// each iteration is one synchronous Put — submitted to the Omega-elected
// leader, committed through the Disk-Paxos log, applied at the reading
// replica. `omegabench -bench` runs the wall-clock variant of this and
// records it in BENCH_kv_throughput.json.
func BenchmarkKVThroughput(b *testing.B) {
	c, err := omegasm.New(
		omegasm.WithN(3),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	if _, ok := c.WaitForAgreement(20 * time.Second); !ok {
		b.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c,
		omegasm.KVSlots(2*b.N+64), // commits may duplicate across failovers
		omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(ctx, uint16(i%1024), uint16(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVSustained measures the sustained committed-write rate of a
// default-options (checkpointing) store over a deliberately tiny 64-slot
// window: every iteration is one synchronous Put, and at any b.N past a
// few hundred the stream is many times the slot capacity, so the rate
// includes the full checkpoint seal/publish/quorum-ack/recycle cycle. A
// fixed-capacity log would fail with ErrLogFull almost immediately.
// `omegabench -bench` runs the wall-clock async variant and records it in
// BENCH_kv_sustained.json.
func BenchmarkKVSustained(b *testing.B) {
	c, err := omegasm.New(
		omegasm.WithN(3),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	if _, ok := c.WaitForAgreement(20 * time.Second); !ok {
		b.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c,
		omegasm.KVSlots(64), // window stays tiny no matter how long the stream runs
		omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(ctx, uint16(i%1024), uint16(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(kv.Checkpoints()), "checkpoints")
}

// BenchmarkShardedKVThroughput measures the live sharded store end to
// end: b.N committed writes pushed through MultiPut groups (so per-shard
// proposal batching engages), at 1 and 4 shards. One op is one committed
// write. These are wall-clock numbers and therefore bounded by the host's
// core count — the architecture's parallel capacity is measured exactly
// by the virtual-time scaling benchmark (`omegabench -bench`,
// BENCH_shardedkv_scaling.json).
func BenchmarkShardedKVThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run("shards="+stats.I(shards), func(b *testing.B) {
			s, err := omegasm.NewShardedKV(
				omegasm.WithShards(shards),
				omegasm.WithN(3),
				omegasm.WithStepInterval(100*time.Microsecond),
				omegasm.WithTimerUnit(time.Millisecond),
				// Worst-case skew plus failover duplicates must still fit
				// one shard's log: with batching each slot holds many.
				omegasm.WithShardSlots(b.N/8+2048),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			if !s.WaitForAgreement(20 * time.Second) {
				b.Fatal("shards did not elect")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			defer cancel()
			const group = 128
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := min(group, b.N-done)
				entries := make([]omegasm.Entry, n)
				for j := range entries {
					k := done + j
					entries[j] = omegasm.Entry{Key: uint16(k % 1024), Val: uint16(k)}
				}
				if err := s.MultiPut(ctx, entries...); err != nil {
					b.Fatal(err)
				}
				done += n
			}
		})
	}
}

// BenchmarkKVWakeDriven shows the polling-vs-wake gap of the engine
// refactor on the same pinned-leader consensus stack: "polling" is the
// pre-engine pipeline (consensus.Drive ticking every machine each
// interval, the writer polling for its commit on the same cadence);
// "wake" is the engine path (submit notifies the leader machine, bursts
// drain back to back, the commit wakes the writer). One iteration is one
// synchronous committed write. `omegabench -bench` runs the wall-clock
// variant and records it in BENCH_engine_wakeup.json.
func BenchmarkKVWakeDriven(b *testing.B) {
	const interval = 200 * time.Microsecond // the shared engine default
	for _, mode := range []struct {
		name string
		mk   func(procs, slots int, interval time.Duration) (*harness.KVDriver, error)
	}{
		{"polling", harness.NewPollingKVDriver},
		{"wake", harness.NewWakeKVDriver},
	} {
		b.Run(mode.name, func(b *testing.B) {
			d, err := mode.mk(3, 2*b.N+64, interval)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Put(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConsensusDecide measures a full single-proposer consensus
// round (3 processes, stable leader), the paper's motivating workload.
func BenchmarkConsensusDecide(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := shmem.NewSimMem(3)
		inst := consensus.NewInstance(mem, 3, 0)
		p, err := consensus.NewProposer(inst, 0, 42, func() int { return 0 })
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 10; s++ {
			p.Step(0)
			if _, ok := p.Decided(); ok {
				break
			}
		}
		if _, ok := p.Decided(); !ok {
			b.Fatal("no decision")
		}
	}
}

// BenchmarkStabilizationAnalysis measures the trace analysis itself over
// a long synthetic run.
func BenchmarkStabilizationAnalysis(b *testing.B) {
	p := harness.Preset{
		Algo: harness.AlgoWriteEfficient, N: 5, Seed: 1,
		Horizon: 100_000, AWBProc: 0, Tau1: 1_000, Delta: 8,
	}
	out, err := harness.Execute(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = trace.Stabilization(out.Res.Samples, out.Res.Crashed)
	}
}
