// Benchmarks: one per regenerated figure/table (running the corresponding
// harness experiment end to end and reporting its headline metric), plus
// micro-benchmarks of the hot paths (task bodies and register accesses).
//
// Run with:
//
//	go test -bench=. -benchmem
package omegasm_test

import (
	"testing"

	"omegasm/internal/consensus"
	"omegasm/internal/core"
	"omegasm/internal/harness"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

// benchExperiment runs one harness experiment per iteration and fails the
// benchmark if any paper verdict fails: the benches double as full-scale
// reproduction checks.
func benchExperiment(b *testing.B, id string) {
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{Quick: true, Seeds: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Report.AllOK() {
			b.Fatalf("verdicts failed:\n%s", out.Report)
		}
	}
}

// BenchmarkFig1TimerDominance regenerates Figure 1 (AWB timer dominance).
func BenchmarkFig1TimerDominance(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkFig2Election regenerates Figure 2 / Theorem 1 (eventual
// leadership across sizes, seeds and crash patterns).
func BenchmarkFig2Election(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkFig3WriteGaps regenerates Figure 3 (the leader's delta-timely
// critical-write sequence).
func BenchmarkFig3WriteGaps(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkFig4LowerBound regenerates Figure 4 / Theorem 5 (the bounded-
// memory adversary).
func BenchmarkFig4LowerBound(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkFig5Bounded regenerates Figure 5 / Theorems 6-7 (bounded
// variables; post-stabilization write set).
func BenchmarkFig5Bounded(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkThm3WriteEfficiency regenerates Theorems 2-3 (Algorithm 1's
// single eventual writer).
func BenchmarkThm3WriteEfficiency(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkLemma56 regenerates Lemmas 5-6 (windowed writer/reader census).
func BenchmarkLemma56(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkTableOptimality regenerates the cross-algorithm trade-off
// table (Section 3.4 / Conclusion).
func BenchmarkTableOptimality(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkVariants regenerates the Section 3.5 variants comparison.
func BenchmarkVariants(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkSweeps regenerates the sensitivity sweeps.
func BenchmarkSweeps(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkConsensus regenerates the Omega-driven replicated log.
func BenchmarkConsensus(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkComplexityCensus regenerates the read/write cost table.
func BenchmarkComplexityCensus(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkAblationStop regenerates the STOP-register ablation.
func BenchmarkAblationStop(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkAblationLeaderNoRead regenerates the Section 5 open-question
// probe.
func BenchmarkAblationLeaderNoRead(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkLeaderChasingAdversary regenerates the AWB1-necessity
// experiment.
func BenchmarkLeaderChasingAdversary(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkElectionLatencyByN reports the median election latency (in
// virtual ticks) per system size as a custom metric.
func BenchmarkElectionLatencyByN(b *testing.B) {
	for _, n := range []int{3, 5, 8, 16} {
		n := n
		b.Run(stats.I(n), func(b *testing.B) {
			var total int64
			runs := 0
			for i := 0; i < b.N; i++ {
				p := harness.Preset{
					Algo: harness.AlgoWriteEfficient, N: n,
					Seed: int64(i + 1), Horizon: 100_000,
					AWBProc: 0, Tau1: 1_000, Delta: 8,
				}
				out, err := harness.Execute(p)
				if err != nil {
					b.Fatal(err)
				}
				if out.Stable {
					total += out.StabTime
					runs++
				}
			}
			if runs > 0 {
				b.ReportMetric(float64(total)/float64(runs), "ticks/election")
			}
		})
	}
}

// --- micro-benchmarks of the hot paths ---

func benchSteps(b *testing.B, build func(mem shmem.Mem, n int) []core.Proc) {
	const n = 8
	mem := shmem.NewSimMem(n)
	procs := build(mem, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs[i%n].Step(int64(i))
	}
}

// BenchmarkAlgo1Step measures one T2 iteration of Algorithm 1 (n=8),
// including the leader computation's suspicion scan.
func BenchmarkAlgo1Step(b *testing.B) {
	benchSteps(b, func(mem shmem.Mem, n int) []core.Proc {
		ps := core.BuildAlgo1(mem, n)
		out := make([]core.Proc, n)
		for i, p := range ps {
			out[i] = p
		}
		return out
	})
}

// BenchmarkAlgo2Step measures one T2 iteration of Algorithm 2 (n=8),
// including the handshake re-signalling.
func BenchmarkAlgo2Step(b *testing.B) {
	benchSteps(b, func(mem shmem.Mem, n int) []core.Proc {
		ps := core.BuildAlgo2(mem, n)
		out := make([]core.Proc, n)
		for i, p := range ps {
			out[i] = p
		}
		return out
	})
}

// BenchmarkAlgo1OnTimer measures one T3 firing of Algorithm 1 (n=8).
func BenchmarkAlgo1OnTimer(b *testing.B) {
	const n = 8
	mem := shmem.NewSimMem(n)
	procs := core.BuildAlgo1(mem, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs[i%n].OnTimer(int64(i))
	}
}

// BenchmarkLeaderQuery measures the cached oracle query (must be trivial:
// it reads no shared memory).
func BenchmarkLeaderQuery(b *testing.B) {
	mem := shmem.NewSimMem(4)
	procs := core.BuildAlgo1(mem, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = procs[0].Leader()
	}
}

// BenchmarkSimRegister measures the instrumented simulation register.
func BenchmarkSimRegister(b *testing.B) {
	mem := shmem.NewSimMem(2)
	r := mem.Word(0, "PROGRESS", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(0, uint64(i))
		_ = r.Read(1)
	}
}

// BenchmarkAtomicRegister measures the live register without counting.
func BenchmarkAtomicRegister(b *testing.B) {
	mem := shmem.NewAtomicMem(2, false)
	r := mem.Word(0, "PROGRESS", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(0, uint64(i))
		_ = r.Read(1)
	}
}

// BenchmarkConsensusDecide measures a full single-proposer consensus
// round (3 processes, stable leader), the paper's motivating workload.
func BenchmarkConsensusDecide(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := shmem.NewSimMem(3)
		inst := consensus.NewInstance(mem, 3, 0)
		p, err := consensus.NewProposer(inst, 0, 42, func() int { return 0 })
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 10; s++ {
			p.Step(0)
			if _, ok := p.Decided(); ok {
				break
			}
		}
		if _, ok := p.Decided(); !ok {
			b.Fatal("no decision")
		}
	}
}

// BenchmarkStabilizationAnalysis measures the trace analysis itself over
// a long synthetic run.
func BenchmarkStabilizationAnalysis(b *testing.B) {
	p := harness.Preset{
		Algo: harness.AlgoWriteEfficient, N: 5, Seed: 1,
		Horizon: 100_000, AWBProc: 0, Tau1: 1_000, Delta: 8,
	}
	out, err := harness.Execute(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = trace.Stabilization(out.Res.Samples, out.Res.Crashed)
	}
}
