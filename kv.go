package omegasm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"omegasm/internal/consensus"
	"omegasm/internal/engine"
	"omegasm/internal/vclock"
)

// ErrNoLeader is returned by KV.Set when the cluster's live processes do
// not currently agree on a live leader, so there is no replica to route
// the write to. Retry after WaitForAgreement, or use Put, which retries
// across anarchy periods itself.
var ErrNoLeader = errors.New("omegasm: no agreed leader")

// ErrLogFull is returned when the replicated log has decided every slot;
// the store keeps serving reads but accepts no further writes.
var ErrLogFull = errors.New("omegasm: replicated log is full")

// KVOption configures NewKV.
type KVOption func(*kvSettings) error

type kvSettings struct {
	slots    int
	interval time.Duration
	burst    int
	batch    int
}

// KVSlots sets the replicated log's capacity in commands (default 1024).
// Each slot pre-allocates one consensus instance (3 registers per
// process) on the cluster's substrate.
func KVSlots(n int) KVOption {
	return func(s *kvSettings) error {
		if n < 1 {
			return fmt.Errorf("omegasm: need at least 1 log slot, got %d", n)
		}
		s.slots = n
		return nil
	}
}

// KVStepInterval sets the cadence of the store's replication driver
// (default: the cluster's step interval). Each tick advances every live
// replica by a burst of micro-steps.
func KVStepInterval(d time.Duration) KVOption {
	return func(s *kvSettings) error {
		if d <= 0 {
			return fmt.Errorf("omegasm: KV step interval must be positive, got %v", d)
		}
		s.interval = d
		return nil
	}
}

// KVStepBurst sets how many replica micro-steps each driver tick runs
// (default: 8 on the atomic substrate, 2 on the SAN). Paxos phases are
// micro-steps, so one slot commit needs several; the burst decouples
// commit rate from the host's timer resolution. On the SAN every step
// costs real quorum I/O, so keep the burst small there.
func KVStepBurst(n int) KVOption {
	return func(s *kvSettings) error {
		if n < 1 {
			return fmt.Errorf("omegasm: KV step burst must be at least 1, got %d", n)
		}
		s.burst = n
		return nil
	}
}

// KVBatch sets how many queued writes one consensus slot may commit
// (default 1: batching off). With n > 1 the leader packs up to n pending
// commands into a single batch publication and runs one Disk-Paxos round
// on a 32-bit descriptor naming it, amortizing the consensus round — and
// its quorum I/O on the SAN — across the whole batch. The price is one
// reserved key: a batched log claims the key 0xFFFF row of the command
// space for descriptors, so Set/Put reject key 0xFFFF entirely (an
// unbatched store only rejects the (0xFFFF, 0xFFFF) pair). Batching also
// caps the cluster at 16 processes (descriptor pids are four bits).
func KVBatch(n int) KVOption {
	return func(s *kvSettings) error {
		if n < 1 {
			return fmt.Errorf("omegasm: KV batch size must be at least 1, got %d", n)
		}
		s.batch = n
		return nil
	}
}

// Entry is one key/value write of a PutAll or MultiPut call.
type Entry struct {
	// Key and Val form the command. Key 0xFFFF is reserved on batched
	// stores; the pair (0xFFFF, 0xFFFF) is reserved everywhere.
	Key, Val uint16
}

// KV is a replicated key-value store served by the cluster: the full
// Paxos-style stack the paper motivates, from the Omega oracle at the
// bottom through an Omega-driven Disk-Paxos replicated log to a
// converging store at the top — over whichever substrate the cluster was
// built on (atomic registers or the SAN).
//
// Writes route to the replica the oracle names leader and are committed
// by consensus, so they survive any minority of process crashes (and, on
// the SAN, any minority of disk crashes); after a leader crash the store
// resumes as soon as the survivors re-elect. Reads are served from the
// local applied state — sequential consistency, not linearizability.
//
// Replication is wake-driven: each replica is an engine machine that
// parks when idle, is woken the moment a write is enqueued for it (Put
// and Set notify the leader's machine), and keeps stepping back-to-back
// while work is draining, so commit latency is CPU-bound instead of
// poll-interval-bound and an idle store costs no stepping at all. The
// KVStepInterval cadence remains as the fallback poll for the cases no
// notification covers (a demoted replica waiting to drop or re-propose
// its queue).
type KV struct {
	c        *Cluster
	interval time.Duration
	stores   []*consensus.KV

	eng     *engine.Live
	ids     []int // engine machine id of each replica's driver
	commits *broadcast
}

// broadcast is a reusable close-channel broadcast: waiters grab the
// current channel and commit signals close it, waking every waiter at
// once (the shape of Put's commit watch).
type broadcast struct {
	mu sync.Mutex
	ch chan struct{}
}

func newBroadcast() *broadcast { return &broadcast{ch: make(chan struct{})} }

func (b *broadcast) wait() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ch
}

func (b *broadcast) signal() {
	b.mu.Lock()
	close(b.ch)
	b.ch = make(chan struct{})
	b.mu.Unlock()
}

// kvMachine drives one replica under the engine's wake-hint contract.
type kvMachine struct {
	kv    *KV
	idx   int
	store *consensus.KV
	burst int
}

// Step implements engine.Machine. The hint encodes the replica's state:
// draining work wants the CPU back immediately, a replica with a queued
// command but no leadership polls at the fallback cadence (leadership may
// move to it, or the watcher may drop its queue), and an idle caught-up
// replica parks until a write or a commit notification arrives.
func (m *kvMachine) Step(now vclock.Time) engine.Hint {
	kv := m.kv
	if kv.c.Crashed(m.idx) {
		return engine.Park()
	}
	leader, agreed := kv.c.AgreedLeader()
	agreed = agreed && leader >= 0 && !kv.c.Crashed(leader)
	// A replica that sees the cluster agreed on someone else sheds its own
	// queue before stepping. The polling watcher below does the same once
	// per cadence, but wake-driven replicas can take many bursts between
	// watcher rounds, so the stale-queue window ("a demoted leader
	// re-proposes old writes after newer ones when it regains leadership")
	// must be closed at the replica itself: by the first step it takes
	// under another replica's reign, the stale queue is gone. (Put
	// re-submits the writes that still matter.)
	if agreed && leader != m.idx {
		m.store.DropPending()
	}
	newly, pending := m.store.StepBurst(now, m.burst)
	if newly > 0 {
		// Wake the other replicas to learn the new decisions — but only
		// from the commit's origin (the agreed leader, or anyone during
		// anarchy). A follower that merely learned entries would otherwise
		// re-notify all peers per wave, turning one commit into ~n²
		// notifications of already-informed machines.
		if !agreed || leader == m.idx {
			for i, id := range kv.ids {
				if i != m.idx {
					kv.eng.Notify(id)
				}
			}
		}
		// And any Put waiting for its command to land.
		kv.commits.signal()
		return engine.Now()
	}
	if pending > 0 {
		if agreed && leader == m.idx && !m.store.LogFull() {
			return engine.Now()
		}
		return engine.At(now + int64(kv.interval))
	}
	return engine.Park()
}

// NewKV builds and starts the cluster's replicated key-value store: one
// replica per process over a freshly allocated log on the cluster's
// shared memory, each driven as a wake-hinted machine of a live engine.
// A cluster serves at most one KV in its lifetime (the log's register
// namespace is claimed permanently); a second call errors. Call Close to
// stop replication.
func NewKV(c *Cluster, opts ...KVOption) (*KV, error) {
	if c == nil {
		return nil, fmt.Errorf("omegasm: nil cluster")
	}
	set := &kvSettings{slots: 1024, interval: c.stepInterval(), burst: 8, batch: 1}
	if c.DiskCount() > 0 {
		set.burst = 2 // SAN steps cost quorum I/O; idle bursts are not free
	}
	for _, o := range opts {
		if o == nil {
			return nil, fmt.Errorf("omegasm: nil KVOption")
		}
		if err := o(set); err != nil {
			return nil, err
		}
	}
	if set.batch > 1 && c.N() > consensus.MaxBatchProcs {
		return nil, fmt.Errorf("omegasm: KV batching supports at most %d processes, got %d",
			consensus.MaxBatchProcs, c.N())
	}
	c.svcMu.Lock()
	if c.kvTaken {
		c.svcMu.Unlock()
		return nil, fmt.Errorf("omegasm: cluster already serves a KV store")
	}
	c.kvTaken = true
	c.svcMu.Unlock()

	n := c.N()
	log, err := consensus.NewBatchLog(c.mem, n, set.slots, set.batch)
	if err != nil {
		return nil, fmt.Errorf("omegasm: %w", err)
	}
	stores := make([]*consensus.KV, n)
	kv := &KV{
		c:        c,
		interval: set.interval,
		eng:      engine.NewLive(engine.LiveConfig{}),
		commits:  newBroadcast(),
	}
	for i := 0; i < n; i++ {
		replica, err := consensus.NewReplica(log, i, c.oracle(i))
		if err != nil {
			return nil, fmt.Errorf("omegasm: kv replica %d: %w", i, err)
		}
		store, err := consensus.NewKV(replica)
		if err != nil {
			return nil, fmt.Errorf("omegasm: kv replica %d: %w", i, err)
		}
		stores[i] = store
	}
	kv.stores = stores
	for i := 0; i < n; i++ {
		kv.ids = append(kv.ids, kv.eng.Add(&kvMachine{
			kv: kv, idx: i, store: stores[i], burst: set.burst,
		}))
	}
	// The leadership watcher polls at the fallback cadence: when the
	// agreed leader changes, the queues stranded on the other replicas are
	// dropped and every machine is woken — the new leader may hold a queue
	// a previous reign left behind, and parked followers may sit on
	// unlearned slots the dead leader decided (nothing else would re-step
	// them until the next write). Without the drop, a demoted-but-live
	// leader would re-propose its stale queue whenever it regains
	// leadership, committing old writes after newer ones; with it, a stale
	// command can only still commit via ballot adoption in the first
	// undecided slot — i.e. never after a newer command. (Writers that
	// still care re-submit: Put retries.)
	lastLeader := -1
	kv.eng.Add(engine.MachineFunc(func(now vclock.Time) engine.Hint {
		if l, ok := c.AgreedLeader(); ok && l >= 0 && !c.Crashed(l) && l != lastLeader {
			for i, st := range stores {
				if i != l {
					st.DropPending()
				}
			}
			lastLeader = l
			for _, id := range kv.ids {
				kv.eng.Notify(id)
			}
		}
		return engine.At(now + int64(set.interval))
	}))
	if err := kv.eng.Start(); err != nil {
		return nil, err
	}
	return kv, nil
}

// Close stops the replication engine. Reads keep answering from the
// frozen applied state; writes stop committing. Idempotent.
func (kv *KV) Close() { kv.eng.Stop() }

// readStore picks the replica to answer reads: the agreed leader's (it
// commits first, so it is the freshest), else the live replica with the
// longest committed prefix — during anarchy (typically right after a
// leader crash) the survivors lag the dead leader by whatever they have
// not yet learned, and the freshest one minimizes the staleness window
// until the next election catches everyone up.
func (kv *KV) readStore() *consensus.KV {
	if l, ok := kv.c.AgreedLeader(); ok && l >= 0 && !kv.c.Crashed(l) {
		return kv.stores[l]
	}
	best := kv.stores[0]
	bestLen := -1
	for i, s := range kv.stores {
		if !kv.c.Crashed(i) {
			if n := s.CommittedLen(); n > bestLen {
				best, bestLen = s, n
			}
		}
	}
	return best
}

// Set queues one write on the current leader's replica and returns
// without waiting for commit — fire and forget. It errors with
// ErrNoLeader during anarchy periods (no agreed live leader to route to)
// and ErrLogFull once the leader has learned every log slot decided;
// reserved pairs (see Entry) error synchronously. Set never retries: a
// nil return means the write was queued, not committed, and the write is
// silently lost if the leader crashes — or is merely demoted — before
// committing it, because a replica sheds its uncommitted queue the moment
// it observes another leader's reign. Set is the async fast path for
// workloads that tolerate loss and check progress via Applied; everything
// else should use Put or PutAll, which block until commit and retry
// across leadership changes.
func (kv *KV) Set(key, val uint16) error {
	l, ok := kv.c.AgreedLeader()
	if !ok || l < 0 || kv.c.Crashed(l) {
		return ErrNoLeader
	}
	if kv.stores[l].LogFull() {
		return ErrLogFull
	}
	if err := kv.stores[l].Set(key, val); err != nil {
		return err
	}
	kv.eng.Notify(kv.ids[l]) // wake the parked leader: the write drains now
	return nil
}

// Put replicates one write and returns once it is committed. It is
// PutAll with a single entry; see PutAll for the full retry and error
// semantics.
//
// Put is wake-driven end to end: the submit wakes the leader's parked
// replica machine immediately, and the call sleeps on the engine's commit
// broadcast rather than a poll loop, so the latency of an uncontended
// write is the consensus round itself, not the driver cadence. The
// fallback ticker only paces the retry path (leadership moved, log
// pressure).
func (kv *KV) Put(ctx context.Context, key, val uint16) error {
	return kv.PutAll(ctx, Entry{Key: key, Val: val})
}

// PutAll replicates a group of writes and returns once every one of them
// is committed. All entries are submitted to the current leader at once,
// so on a batched store (KVBatch) they are packed into as few consensus
// slots as the batch size allows — the group-commit fast path that
// amortizes one Disk-Paxos round across the group. Entries are committed
// in submission order when the group lands in one reign; duplicate
// entries are deduplicated (a Set is idempotent).
//
// The call watches the log entries appended after it began (a watermark
// per replica, so an identical historical write never counts as this
// call's success) and resubmits the not-yet-committed remainder if
// leadership moves — or a leadership flap sweeps the leader's queue —
// before everything lands. Re-submission can commit an entry into more
// than one slot; the store applies sets idempotently, so duplicates only
// spend log capacity. PutAll returns ctx's error on cancellation, the
// reserved-pair error synchronously (committing nothing), and ErrLogFull
// if the log fills before the whole group commits.
func (kv *KV) PutAll(ctx context.Context, entries ...Entry) error {
	if len(entries) == 0 {
		return nil
	}
	batched := kv.stores[0].Batched()
	// remaining holds the deduplicated commands still waiting for commit,
	// in submission order (resubmissions preserve it).
	remaining := make([]uint32, 0, len(entries))
	seen := make(map[uint32]bool, len(entries))
	for _, e := range entries {
		cmd := consensus.EncodeSet(e.Key, e.Val)
		if consensus.IsReserved(cmd, batched) {
			return fmt.Errorf("omegasm: key/value pair (0x%04x, 0x%04x) is reserved", e.Key, e.Val)
		}
		if !seen[cmd] {
			seen[cmd] = true
			remaining = append(remaining, cmd)
		}
	}
	// Commit watermarks: only entries a replica appends from here on can
	// acknowledge this call. Each appended region is scanned exactly once
	// (the watermark advances past it), so a long-lived call stays
	// O(new commits), not O(log).
	marks := make([]int, len(kv.stores))
	for i, s := range kv.stores {
		marks[i] = s.CommittedLen()
	}
	confirm := func(i int) {
		suffix := kv.stores[i].CommittedSince(marks[i])
		marks[i] += len(suffix)
		for _, c := range suffix {
			if seen[c] {
				delete(seen, c)
				for j, r := range remaining {
					if r == c {
						remaining = append(remaining[:j], remaining[j+1:]...)
						break
					}
				}
			}
		}
	}
	submittedTo := -1
	var submitGen uint64
	ticker := time.NewTicker(kv.interval)
	defer ticker.Stop()
	for {
		// Grab the broadcast channel before scanning: a commit that lands
		// after the scan closes this channel, so the wait below cannot
		// miss it.
		committed := kv.commits.wait()
		for i := range kv.stores {
			if !kv.c.Crashed(i) {
				confirm(i)
			}
		}
		if len(remaining) == 0 {
			return nil
		}
		if kv.readStore().LogFull() {
			return ErrLogFull
		}
		if l, ok := kv.c.AgreedLeader(); ok && l >= 0 && !kv.c.Crashed(l) {
			// Resubmit on an observed leader change, and also when the
			// leader's queue was swept since we submitted (its drop
			// generation moved): a leadership flap this loop never observed
			// takes the queued remainder with it. Re-scan the leader's
			// commits right before resubmitting — an entry may have
			// committed between the scan above and here, and a needless
			// duplicate burns log capacity forever.
			gen := kv.stores[l].DropGeneration()
			if l != submittedTo || gen != submitGen {
				confirm(l)
				if len(remaining) == 0 {
					return nil
				}
				pairs := make([][2]uint16, len(remaining))
				for j, c := range remaining {
					k, v := consensus.DecodeSet(c)
					pairs[j] = [2]uint16{k, v}
				}
				if err := kv.stores[l].SetAll(pairs...); err != nil {
					return err
				}
				submittedTo, submitGen = l, gen
			}
			kv.eng.Notify(kv.ids[l])
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-committed:
		case <-ticker.C:
		}
	}
}

// Get returns the value of key in the applied state of the freshest
// readable replica (the leader's when one is agreed). Reads are
// sequentially consistent: they reflect a committed prefix, possibly a
// slightly stale one.
func (kv *KV) Get(key uint16) (uint16, bool) {
	return kv.readStore().Get(key)
}

// Len returns the number of keys in the applied state.
func (kv *KV) Len() int { return kv.readStore().Len() }

// Applied returns how many log entries the reading replica has applied.
func (kv *KV) Applied() int { return kv.readStore().Applied() }

// Snapshot returns a copy of the applied state.
func (kv *KV) Snapshot() map[uint16]uint16 { return kv.readStore().Snapshot() }

// Capacity returns the replicated log's total slot count. On a batched
// store one slot commits up to BatchSize writes, so the write capacity in
// commands is up to Capacity() * BatchSize().
func (kv *KV) Capacity() int { return kv.stores[0].Capacity() }

// SlotsUsed returns how many consensus slots the reading replica has
// learned. On a batched store this lags Applied by the batching factor —
// the ratio Applied()/SlotsUsed() is the measured average batch size.
func (kv *KV) SlotsUsed() int { return kv.readStore().SlotsDecided() }

// Batched reports whether the store packs multi-command batches into
// consensus slots (KVBatch with a size above 1).
func (kv *KV) Batched() bool { return kv.stores[0].Batched() }

// BatchSize returns how many queued writes one consensus slot may commit
// (1: batching off).
func (kv *KV) BatchSize() int { return kv.stores[0].MaxBatch() }
