package omegasm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"omegasm/internal/consensus"
	"omegasm/internal/engine"
	"omegasm/internal/lease"
	"omegasm/internal/vclock"
)

// ErrNoLeader is returned by KV.Set when the cluster's live processes do
// not currently agree on a live leader, so there is no replica to route
// the write to. Retry after WaitForAgreement, or use Put, which retries
// across anarchy periods itself.
var ErrNoLeader = errors.New("omegasm: no agreed leader")

// ErrLogFull is returned when a replicated log with checkpointing
// disabled (KVCheckpointEvery(0)) has decided every slot; the store keeps
// serving reads but accepts no further writes. Under default options the
// log checkpoints and recycles slots, so writes never return ErrLogFull.
var ErrLogFull = errors.New("omegasm: replicated log is full")

// ErrReadUnsupported is returned by Read in the linearizable modes
// (ReadLease, ReadQuorum) on a store whose log reserves no descriptor
// row: both modes fence through no-op barrier slots, which only batched
// or checkpointing logs can carry. Default-options stores checkpoint and
// support every mode; only KVCheckpointEvery(0) combined with KVBatch(1)
// hits this.
var ErrReadUnsupported = errors.New("omegasm: linearizable reads need batching or checkpointing enabled")

// ReadMode selects the consistency/latency point of a KV.Read.
type ReadMode int

const (
	// ReadFreshest answers from the freshest readable replica's applied
	// state without any coordination: sequential consistency (a committed
	// prefix, possibly stale), the same guarantee as Get. Never blocks.
	ReadFreshest ReadMode = iota
	// ReadLease answers linearizably from the lease holder's applied
	// state when a valid, barrier-complete lease exists — one clock check
	// and one atomic load, no consensus round. During anarchy, after
	// lease expiry, or with leases disabled it falls back to a ReadQuorum
	// round rather than give up linearizability.
	ReadLease
	// ReadQuorum answers linearizably by fencing through the log: it
	// waits for the leader to win a consensus slot armed after the read
	// began (committing a no-op barrier if the store is idle) and then
	// reads that replica. Always a full consensus round-trip.
	ReadQuorum
)

// KVOption configures NewKV.
type KVOption func(*kvSettings) error

// ckptAuto is the sentinel for "checkpoint cadence not chosen": NewKV
// derives it from the slot count.
const ckptAuto = -1

// leaseAuto is the sentinel for "lease duration not chosen": NewKV
// enables leases with a default duration whenever the log can carry the
// catch-up barrier.
const leaseAuto = time.Duration(-1)

// defaultLeaseDur is the auto-enabled lease duration: long enough that
// the holder's refresh cadence (a quarter of it) is negligible work,
// short enough that a leader crash delays the next writer by at most a
// few election timeouts.
const defaultLeaseDur = 20 * time.Millisecond

type kvSettings struct {
	slots    int
	interval time.Duration
	burst    int
	batch    int
	ckpt     int
	lease    time.Duration
}

// KVSlots sets the replicated log's slot capacity (default 1024). Each
// slot pre-allocates one consensus instance (3 registers per process) on
// the cluster's substrate. With checkpointing on (the default) the slots
// form a recycling window and bound only the in-flight portion of the
// write stream; with KVCheckpointEvery(0) they are the store's total
// write capacity.
func KVSlots(n int) KVOption {
	return func(s *kvSettings) error {
		if n < 1 {
			return fmt.Errorf("omegasm: need at least 1 log slot, got %d", n)
		}
		s.slots = n
		return nil
	}
}

// KVCheckpointEvery sets how many decided slots separate the leader's
// checkpoint proposals (default: a quarter of the slot count). Every
// checkpoint seals the log prefix into a snapshot of the store's state,
// published to immutable per-epoch register areas on the cluster's
// substrate; once a quorum of replicas has durably acknowledged passing
// it, the sealed slots are recycled and reused for new proposals — so
// the write stream is unbounded and Put/PutAll never return ErrLogFull.
// A replica that falls behind the recycled window (a restarted or long-
// parked laggard) installs the latest snapshot instead of replaying.
//
// KVCheckpointEvery(0) disables checkpointing: the log is a fixed array
// that fills permanently after KVSlots writes, exactly the pre-recycling
// behavior, and ErrLogFull returns. The price of checkpointing is the
// reserved key row 0xFFFF (checkpoint descriptors claim the top row of
// the command space, as batch descriptors do) and a cap of 16 processes;
// clusters above 16 processes fall back to checkpointing off unless a
// cadence is set explicitly. n must be below the slot count, so the
// checkpoint command itself always fits the window.
func KVCheckpointEvery(n int) KVOption {
	return func(s *kvSettings) error {
		if n < 0 {
			return fmt.Errorf("omegasm: checkpoint interval must not be negative, got %d", n)
		}
		s.ckpt = n
		return nil
	}
}

// KVStepInterval sets the cadence of the store's replication driver
// (default: the cluster's step interval). Each tick advances every live
// replica by a burst of micro-steps.
func KVStepInterval(d time.Duration) KVOption {
	return func(s *kvSettings) error {
		if d <= 0 {
			return fmt.Errorf("omegasm: KV step interval must be positive, got %v", d)
		}
		s.interval = d
		return nil
	}
}

// KVStepBurst sets how many replica micro-steps each driver tick runs
// (default: 8 on the atomic substrate, 2 on the SAN). Paxos phases are
// micro-steps, so one slot commit needs several; the burst decouples
// commit rate from the host's timer resolution. On the SAN every step
// costs real quorum I/O, so keep the burst small there.
func KVStepBurst(n int) KVOption {
	return func(s *kvSettings) error {
		if n < 1 {
			return fmt.Errorf("omegasm: KV step burst must be at least 1, got %d", n)
		}
		s.burst = n
		return nil
	}
}

// KVBatch sets how many queued writes one consensus slot may commit
// (default 1: batching off). With n > 1 the leader packs up to n pending
// commands into a single batch publication and runs one Disk-Paxos round
// on a 32-bit descriptor naming it, amortizing the consensus round — and
// its quorum I/O on the SAN — across the whole batch. The price is one
// reserved key: a batched log claims the key 0xFFFF row of the command
// space for descriptors, so Set/Put reject key 0xFFFF entirely (an
// unbatched store only rejects the (0xFFFF, 0xFFFF) pair). Batching also
// caps the cluster at 16 processes (descriptor pids are four bits).
func KVBatch(n int) KVOption {
	return func(s *kvSettings) error {
		if n < 1 {
			return fmt.Errorf("omegasm: KV batch size must be at least 1, got %d", n)
		}
		s.batch = n
		return nil
	}
}

// KVLease sets the leader-lease duration behind ReadLease's local
// linearizable reads (default: 20ms whenever the log reserves the
// descriptor row — batching or checkpointing on — which default options
// do). The agreed leader claims the lease, commits one no-op barrier
// slot to prove its state covers every prior authority's commits, and
// then serves linearizable reads from its own applied state until the
// lease expires; it extends the lease while it leads. Every replica's
// proposer is gated on holding the lease, so commits never straddle two
// leases — the price is that after a leader crash the successor waits
// out the remainder of the dead leader's lease (at most d) before it can
// commit. KVLease(0) disables leases: ReadLease then degrades to quorum
// rounds, and proposers are gated only by the Omega oracle, the
// pre-lease behavior.
func KVLease(d time.Duration) KVOption {
	return func(s *kvSettings) error {
		if d < 0 {
			return fmt.Errorf("omegasm: lease duration must not be negative, got %v", d)
		}
		s.lease = d
		return nil
	}
}

// Entry is one key/value write of a PutAll or MultiPut call.
type Entry struct {
	// Key and Val form the command. Key 0xFFFF is reserved on batched
	// stores; the pair (0xFFFF, 0xFFFF) is reserved everywhere.
	Key, Val uint16
}

// KV is a replicated key-value store served by the cluster: the full
// Paxos-style stack the paper motivates, from the Omega oracle at the
// bottom through an Omega-driven Disk-Paxos replicated log to a
// converging store at the top — over whichever substrate the cluster was
// built on (atomic registers or the SAN).
//
// Writes route to the replica the oracle names leader and are committed
// by consensus, so a committed write survives any minority of process
// crashes (and, on the SAN, any minority of disk crashes) — including
// across log recycling: a checkpoint's snapshot is durably published on
// the substrate before the slots it seals can be reused, so every
// committed write is always reconstructible from either a live slot or
// the newest snapshot. After a leader crash the store resumes as soon as
// the survivors re-elect. Reads are served from the local applied state —
// sequential consistency, not linearizability.
//
// Under default options the log checkpoints (KVCheckpointEvery): the
// leader periodically seals the committed prefix into a published
// snapshot, a quorum acknowledges it, and the sealed slots recycle — so
// the write stream is unbounded and KVSlots bounds only the in-flight
// window. Disable with KVCheckpointEvery(0) to restore the fixed-capacity
// log and its ErrLogFull semantics.
//
// Replication is wake-driven: each replica is an engine machine that
// parks when idle, is woken the moment a write is enqueued for it (Put
// and Set notify the leader's machine), and keeps stepping back-to-back
// while work is draining, so commit latency is CPU-bound instead of
// poll-interval-bound and an idle store costs no stepping at all. The
// KVStepInterval cadence remains as the fallback poll for the cases no
// notification covers (a demoted replica waiting to drop or re-propose
// its queue).
type KV struct {
	c        *Cluster
	interval time.Duration
	stores   []*consensus.KV

	eng     *engine.Live
	ids     []int // engine machine id of each replica's driver
	commits *broadcast

	// lease is the leader-lease register behind ReadLease (nil: leases
	// off). leaseDur/leaseEps are engine nanoseconds; see KVLease.
	lease    *lease.Register
	leaseDur int64
	leaseEps int64
}

// broadcast is a reusable close-channel broadcast: waiters grab the
// current channel and commit signals close it, waking every waiter at
// once (the shape of Put's commit watch). A signal with no waiter since
// the last reset is free: async writers (Set) commit at full rate
// without a channel allocation per commit wave.
type broadcast struct {
	mu     sync.Mutex
	ch     chan struct{}
	waited bool
}

func newBroadcast() *broadcast { return &broadcast{ch: make(chan struct{})} }

func (b *broadcast) wait() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waited = true
	return b.ch
}

func (b *broadcast) signal() {
	b.mu.Lock()
	if b.waited {
		close(b.ch)
		b.ch = make(chan struct{})
		b.waited = false
	}
	b.mu.Unlock()
}

// kvMachine drives one replica under the engine's wake-hint contract.
type kvMachine struct {
	kv    *KV
	idx   int
	store *consensus.KV
	burst int

	// Lease state of this replica's reigns: acqGen is the store's fence
	// generation snapshot taken at the last acquisition, and barrierDone
	// records that the catch-up barrier for it has completed (the lease
	// was marked readable). Only this machine's goroutine touches them.
	acqGen      uint64
	barrierDone bool
}

// Step implements engine.Machine. The hint encodes the replica's state:
// draining work wants the CPU back immediately, a replica with a queued
// command but no leadership polls at the fallback cadence (leadership may
// move to it, or the watcher may drop its queue), and an idle caught-up
// replica parks until a write or a commit notification arrives.
func (m *kvMachine) Step(now vclock.Time) engine.Hint {
	kv := m.kv
	if kv.c.Crashed(m.idx) {
		return engine.Park()
	}
	leader, agreed := kv.c.AgreedLeader()
	agreed = agreed && leader >= 0 && !kv.c.Crashed(leader)
	// A replica that sees the cluster agreed on someone else sheds its own
	// queue before stepping. The polling watcher below does the same once
	// per cadence, but wake-driven replicas can take many bursts between
	// watcher rounds, so the stale-queue window ("a demoted leader
	// re-proposes old writes after newer ones when it regains leadership")
	// must be closed at the replica itself: by the first step it takes
	// under another replica's reign, the stale queue is gone. (Put
	// re-submits the writes that still matter.)
	if agreed && leader != m.idx {
		m.store.DropPending()
	}
	// Lease housekeeping, before the burst so a fresh acquisition is
	// already the arming authority for it: the agreed leader extends its
	// grant while it holds, or (re)claims one the moment the previous
	// grant has expired. A demoted or crashed holder simply stops
	// extending and its grant lapses.
	holder := false
	var epoch uint64
	if kv.lease != nil && agreed && leader == m.idx {
		if e, held := kv.lease.Held(m.idx, now); held {
			holder, epoch = true, e
			kv.lease.Extend(m.idx, now, kv.leaseDur)
		} else if e, ok := kv.lease.Acquire(m.idx, now, kv.leaseDur, kv.leaseEps); ok {
			holder, epoch = true, e
			m.acqGen = m.store.FenceGen()
			m.barrierDone = false
		}
	}
	newly, pending := m.store.StepBurst(now, m.burst)
	if holder && !m.barrierDone {
		// The catch-up barrier: once a proposal armed after the
		// acquisition wins its ballot, this replica provably holds (and
		// has applied) every command any earlier authority committed, and
		// the lease becomes readable. Any write traffic fences for free;
		// an idle store drives one no-op barrier slot through the log.
		if m.store.FencedSince(m.acqGen) {
			kv.lease.MarkReadable(epoch, m.idx)
			m.barrierDone = true
		} else if pending == 0 && m.store.PendingLen() == 0 {
			if m.store.SubmitBarrier() != nil {
				m.barrierDone = true // barrier-less log: lease stays unreadable
			}
			return engine.Now()
		}
	}
	if newly > 0 {
		// Wake the other replicas to learn the new decisions — but only
		// from the commit's origin (the agreed leader, or anyone during
		// anarchy). A follower that merely learned entries would otherwise
		// re-notify all peers per wave, turning one commit into ~n²
		// notifications of already-informed machines.
		if !agreed || leader == m.idx {
			for i, id := range kv.ids {
				if i != m.idx {
					kv.eng.Notify(id)
				}
			}
		}
		// And any Put waiting for its command to land.
		kv.commits.signal()
		return engine.Now()
	}
	if pending > 0 {
		// A leader with queued work drains at CPU speed — unless the log
		// can make no progress: permanently full (checkpointing off), or
		// the recycling window is exhausted until a checkpoint gathers its
		// ack quorum, in which case stepping would only spin. The fallback
		// cadence re-checks the acks (the stepped replica reads them and
		// slides the window itself).
		if agreed && leader == m.idx && !m.store.LogFull() && !m.store.WindowFull() {
			return engine.Now()
		}
		return engine.At(now + int64(kv.interval))
	}
	// Idle. A leaseholder must not park: its grant needs extending well
	// before expiry or lease reads go dark between writes. An agreed
	// leader still waiting out a predecessor's grant polls for the expiry
	// at the fallback cadence. Everyone else parks until notified.
	if kv.lease != nil && agreed && leader == m.idx {
		if holder {
			return engine.At(now + kv.leaseDur/4)
		}
		return engine.At(now + int64(kv.interval))
	}
	return engine.Park()
}

// NewKV builds and starts the cluster's replicated key-value store: one
// replica per process over a freshly allocated log on the cluster's
// shared memory, each driven as a wake-hinted machine of a live engine.
// A cluster serves at most one KV in its lifetime (the log's register
// namespace is claimed permanently); a second call errors. Call Close to
// stop replication.
func NewKV(c *Cluster, opts ...KVOption) (*KV, error) {
	if c == nil {
		return nil, fmt.Errorf("omegasm: nil cluster")
	}
	set := &kvSettings{slots: 1024, interval: c.stepInterval(), burst: 8, batch: 1, ckpt: ckptAuto, lease: leaseAuto}
	if c.DiskCount() > 0 {
		set.burst = 2 // SAN steps cost quorum I/O; idle bursts are not free
	}
	for _, o := range opts {
		if o == nil {
			return nil, fmt.Errorf("omegasm: nil KVOption")
		}
		if err := o(set); err != nil {
			return nil, err
		}
	}
	if set.batch > 1 && c.N() > consensus.MaxBatchProcs {
		return nil, fmt.Errorf("omegasm: KV batching supports at most %d processes, got %d",
			consensus.MaxBatchProcs, c.N())
	}
	if set.ckpt == ckptAuto {
		// Default on: seal every quarter window. Configurations that cannot
		// checkpoint (a 1-slot log, more processes than descriptors can
		// name) silently keep the fixed-capacity log instead of erroring.
		set.ckpt = consensus.DefaultCheckpointEvery(set.slots, c.N())
	}
	if set.ckpt > 0 {
		if c.N() > consensus.MaxBatchProcs {
			return nil, fmt.Errorf("omegasm: KV checkpointing supports at most %d processes, got %d",
				consensus.MaxBatchProcs, c.N())
		}
		if set.ckpt >= set.slots {
			return nil, fmt.Errorf("omegasm: checkpoint interval %d must be below the %d-slot window",
				set.ckpt, set.slots)
		}
	}
	c.svcMu.Lock()
	if c.kvTaken {
		c.svcMu.Unlock()
		return nil, fmt.Errorf("omegasm: cluster already serves a KV store")
	}
	c.kvTaken = true
	c.svcMu.Unlock()

	n := c.N()
	log, err := consensus.NewCheckpointLog(c.mem, n, set.slots, set.batch, set.ckpt)
	if err != nil {
		return nil, fmt.Errorf("omegasm: %w", err)
	}
	// Resolve the lease knob against the log's capabilities: the catch-up
	// barrier needs the descriptor row, so auto-mode enables leases
	// exactly when the row is reserved, and an explicit request without
	// it is a configuration error.
	leaseDur := set.lease
	if leaseDur == leaseAuto {
		leaseDur = 0
		if log.ReservesTopRow() {
			leaseDur = defaultLeaseDur
		}
	} else if leaseDur > 0 && !log.ReservesTopRow() {
		return nil, fmt.Errorf("omegasm: KVLease needs batching or checkpointing enabled")
	}
	stores := make([]*consensus.KV, n)
	kv := &KV{
		c:        c,
		interval: set.interval,
		eng:      engine.NewLive(engine.LiveConfig{}),
		commits:  newBroadcast(),
	}
	if leaseDur > 0 {
		kv.lease = &lease.Register{}
		kv.leaseDur = int64(leaseDur)
		kv.leaseEps = int64(leaseDur / 8)
	}
	for i := 0; i < n; i++ {
		replica, err := consensus.NewReplica(log, i, c.oracle(i))
		if err != nil {
			return nil, fmt.Errorf("omegasm: kv replica %d: %w", i, err)
		}
		store, err := consensus.NewKV(replica)
		if err != nil {
			return nil, fmt.Errorf("omegasm: kv replica %d: %w", i, err)
		}
		if kv.lease != nil {
			// The authority gate: no replica arms a proposal without
			// holding the lease, which is what makes a valid lease
			// exclusive commit authority (see internal/lease).
			reg, id := kv.lease, i
			store.SetAuthority(func(t vclock.Time) bool {
				_, held := reg.Held(id, t)
				return held
			})
		}
		stores[i] = store
	}
	kv.stores = stores
	for i := 0; i < n; i++ {
		kv.ids = append(kv.ids, kv.eng.Add(&kvMachine{
			kv: kv, idx: i, store: stores[i], burst: set.burst,
		}))
	}
	// The leadership watcher polls at the fallback cadence: when the
	// agreed leader changes, the queues stranded on the other replicas are
	// dropped and every machine is woken — the new leader may hold a queue
	// a previous reign left behind, and parked followers may sit on
	// unlearned slots the dead leader decided (nothing else would re-step
	// them until the next write). Without the drop, a demoted-but-live
	// leader would re-propose its stale queue whenever it regains
	// leadership, committing old writes after newer ones; with it, a stale
	// command can only still commit via ballot adoption in the first
	// undecided slot — i.e. never after a newer command. (Writers that
	// still care re-submit: Put retries.)
	lastLeader := -1
	kv.eng.Add(engine.MachineFunc(func(now vclock.Time) engine.Hint {
		if l, ok := c.AgreedLeader(); ok && l >= 0 && !c.Crashed(l) && l != lastLeader {
			for i, st := range stores {
				if i != l {
					st.DropPending()
				}
			}
			lastLeader = l
			for _, id := range kv.ids {
				kv.eng.Notify(id)
			}
		}
		return engine.At(now + int64(set.interval))
	}))
	if err := kv.eng.Start(); err != nil {
		return nil, err
	}
	return kv, nil
}

// Close stops the replication engine. Reads keep answering from the
// frozen applied state; writes stop committing. Idempotent.
func (kv *KV) Close() { kv.eng.Stop() }

// readStore picks the replica to answer reads: the agreed leader's (it
// commits first, so it is the freshest), else the live replica with the
// longest committed prefix — during anarchy (typically right after a
// leader crash) the survivors lag the dead leader by whatever they have
// not yet learned, and the freshest one minimizes the staleness window
// until the next election catches everyone up.
func (kv *KV) readStore() *consensus.KV {
	if l, ok := kv.c.AgreedLeader(); ok && l >= 0 && !kv.c.Crashed(l) {
		return kv.stores[l]
	}
	best := kv.stores[0]
	bestLen := -1
	for i, s := range kv.stores {
		if !kv.c.Crashed(i) {
			if n := s.CommittedLen(); n > bestLen {
				best, bestLen = s, n
			}
		}
	}
	return best
}

// Set queues one write on the current leader's replica and returns
// without waiting for commit — fire and forget. It errors with
// ErrNoLeader during anarchy periods (no agreed live leader to route to)
// and — only when checkpointing is disabled — ErrLogFull once the leader
// has learned every log slot decided; reserved pairs (see Entry) error
// synchronously. Set never retries: a
// nil return means the write was queued, not committed, and the write is
// silently lost if the leader crashes — or is merely demoted — before
// committing it, because a replica sheds its uncommitted queue the moment
// it observes another leader's reign. Set is the async fast path for
// workloads that tolerate loss and check progress via Applied; everything
// else should use Put or PutAll, which block until commit and retry
// across leadership changes.
func (kv *KV) Set(key, val uint16) error {
	l, ok := kv.c.AgreedLeader()
	if !ok || l < 0 || kv.c.Crashed(l) {
		return ErrNoLeader
	}
	if kv.stores[l].LogFull() {
		return ErrLogFull
	}
	if err := kv.stores[l].Set(key, val); err != nil {
		return err
	}
	kv.eng.Notify(kv.ids[l]) // wake the parked leader: the write drains now
	return nil
}

// Put replicates one write and returns once it is committed. It is
// PutAll with a single entry; see PutAll for the full retry and error
// semantics.
//
// Put is wake-driven end to end: the submit wakes the leader's parked
// replica machine immediately, and the call sleeps on the engine's commit
// broadcast rather than a poll loop, so the latency of an uncontended
// write is the consensus round itself, not the driver cadence. The
// fallback ticker only paces the retry path (leadership moved, log
// pressure).
func (kv *KV) Put(ctx context.Context, key, val uint16) error {
	return kv.PutAll(ctx, Entry{Key: key, Val: val})
}

// PutAll replicates a group of writes and returns once every one of them
// is committed. All entries are submitted to the current leader at once,
// so on a batched store (KVBatch) they are packed into as few consensus
// slots as the batch size allows — the group-commit fast path that
// amortizes one Disk-Paxos round across the group. Entries are committed
// in submission order when the group lands in one reign; duplicate
// entries are deduplicated (a Set is idempotent).
//
// The call watches the log entries appended after it began (a watermark
// per replica, so an identical historical write never counts as this
// call's success) and resubmits the not-yet-committed remainder if
// leadership moves — or a leadership flap sweeps the leader's queue —
// before everything lands. Re-submission can commit an entry into more
// than one slot; the store applies sets idempotently, so duplicates only
// spend log capacity. PutAll returns ctx's error on cancellation, the
// reserved-pair error synchronously (committing nothing), and — only when
// checkpointing is disabled — ErrLogFull if the fixed log fills before
// the whole group commits. With checkpointing (the default) the stream is
// unbounded: window backpressure paces the call, it never fails it.
func (kv *KV) PutAll(ctx context.Context, entries ...Entry) error {
	if len(entries) == 0 {
		return nil
	}
	claimed := kv.stores[0].ReservesTopRow()
	// remaining holds the deduplicated commands still waiting for commit,
	// in submission order (resubmissions preserve it).
	remaining := make([]uint32, 0, len(entries))
	seen := make(map[uint32]bool, len(entries))
	for _, e := range entries {
		cmd := consensus.EncodeSet(e.Key, e.Val)
		if consensus.IsReserved(cmd, claimed) {
			return fmt.Errorf("omegasm: key/value pair (0x%04x, 0x%04x) is reserved", e.Key, e.Val)
		}
		if !seen[cmd] {
			seen[cmd] = true
			remaining = append(remaining, cmd)
		}
	}
	// Commit watermarks: only entries a replica appends from here on can
	// acknowledge this call. Each appended region is scanned exactly once
	// (the watermark advances past it), so a long-lived call stays
	// O(new commits), not O(log). If a checkpoint summarizes entries away
	// before they are scanned, they simply never confirm and the remainder
	// is resubmitted — duplicates apply idempotently.
	marks := make([]int, len(kv.stores))
	for i, s := range kv.stores {
		marks[i] = s.CommittedLen()
	}
	confirm := func(i int) {
		suffix, next := kv.stores[i].TailSince(marks[i])
		marks[i] = next
		for _, c := range suffix {
			if seen[c] {
				delete(seen, c)
				for j, r := range remaining {
					if r == c {
						remaining = append(remaining[:j], remaining[j+1:]...)
						break
					}
				}
			}
		}
	}
	submittedTo := -1
	var submitGen uint64
	ticker := time.NewTicker(kv.interval)
	defer ticker.Stop()
	for {
		// Grab the broadcast channel before scanning: a commit that lands
		// after the scan closes this channel, so the wait below cannot
		// miss it.
		committed := kv.commits.wait()
		for i := range kv.stores {
			if !kv.c.Crashed(i) {
				confirm(i)
			}
		}
		if len(remaining) == 0 {
			return nil
		}
		if kv.readStore().LogFull() {
			return ErrLogFull
		}
		if l, ok := kv.c.AgreedLeader(); ok && l >= 0 && !kv.c.Crashed(l) {
			// Resubmit on an observed leader change, and also when the
			// leader's queue was swept since we submitted (its drop
			// generation moved): a leadership flap this loop never observed
			// takes the queued remainder with it. Re-scan the leader's
			// commits right before resubmitting — an entry may have
			// committed between the scan above and here, and a needless
			// duplicate burns log capacity forever.
			gen := kv.stores[l].DropGeneration()
			if l != submittedTo || gen != submitGen {
				confirm(l)
				if len(remaining) == 0 {
					return nil
				}
				pairs := make([][2]uint16, len(remaining))
				for j, c := range remaining {
					k, v := consensus.DecodeSet(c)
					pairs[j] = [2]uint16{k, v}
				}
				if err := kv.stores[l].SetAll(pairs...); err != nil {
					return err
				}
				submittedTo, submitGen = l, gen
			}
			kv.eng.Notify(kv.ids[l])
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-committed:
		case <-ticker.C:
		}
	}
}

// Get returns the value of key in the applied state of the freshest
// readable replica (the leader's when one is agreed). Reads are
// sequentially consistent: they reflect a committed prefix, possibly a
// slightly stale one. For linearizable reads use Read with ReadLease or
// ReadQuorum.
func (kv *KV) Get(key uint16) (uint16, bool) {
	return kv.readStore().Get(key)
}

// Read returns the value of key under the chosen consistency mode; see
// ReadMode for the modes' guarantees and costs. ReadFreshest never
// blocks or errors (ctx is unused). ReadLease answers in two atomic
// loads while a readable lease is valid and falls back to a quorum
// round otherwise; ReadQuorum always fences through the log. The
// blocking modes return ctx's error on cancellation and
// ErrReadUnsupported on stores without a descriptor row.
func (kv *KV) Read(ctx context.Context, key uint16, mode ReadMode) (uint16, bool, error) {
	switch mode {
	case ReadFreshest:
		v, ok := kv.readStore().Get(key)
		return v, ok, nil
	case ReadLease:
		if kv.lease != nil {
			if h, _, ok := kv.lease.ReadableHolder(kv.eng.Now()); ok {
				// The linearization point is the validity check itself: at
				// that instant the holder's applied state contains every
				// committed write (barrier + exclusive authority), and the
				// holder's state is monotone, so the value read just after
				// is at least as fresh. The holder may have crashed — its
				// frozen state is still complete, because nobody else can
				// commit while its grant is valid.
				v, ok := kv.stores[h].Get(key)
				return v, ok, nil
			}
		}
		// Anarchy, expiry, or leases off: preserve linearizability the
		// slow way rather than silently weaken the read.
		return kv.readQuorum(ctx, key)
	case ReadQuorum:
		return kv.readQuorum(ctx, key)
	}
	return 0, false, fmt.Errorf("omegasm: unknown read mode %d", mode)
}

// readQuorum is the linearizable slow path: wait until the agreed leader
// wins a consensus slot whose proposal was armed after this call began —
// proof it has learned and applied every write committed before the call
// — then answer from its state. Write traffic fences for free; on an
// idle store the call drives a no-op barrier slot through the log. A
// leadership change mid-call restarts the fence against the new leader.
func (kv *KV) readQuorum(ctx context.Context, key uint16) (uint16, bool, error) {
	if !kv.stores[0].ReservesTopRow() {
		return 0, false, ErrReadUnsupported
	}
	ticker := time.NewTicker(kv.interval)
	defer ticker.Stop()
	fencedFrom := -1 // leader the fence generation below was taken from
	var gen uint64
	for {
		// Grab the broadcast channel before checking: progress that lands
		// after the check closes this channel, so the wait cannot miss it.
		progress := kv.commits.wait()
		if l, ok := kv.c.AgreedLeader(); ok && l >= 0 && !kv.c.Crashed(l) {
			if l != fencedFrom {
				fencedFrom, gen = l, kv.stores[l].FenceGen()
			}
			if kv.stores[l].FencedSince(gen) {
				v, ok := kv.stores[l].Get(key)
				return v, ok, nil
			}
			if kv.stores[l].PendingLen() == 0 {
				if err := kv.stores[l].SubmitBarrier(); err != nil {
					return 0, false, err
				}
			}
			kv.eng.Notify(kv.ids[l])
		}
		select {
		case <-ctx.Done():
			return 0, false, ctx.Err()
		case <-progress:
		case <-ticker.C:
		}
	}
}

// LeaseDuration returns the leader-lease duration behind ReadLease's
// local linearizable reads (0: leases disabled; see KVLease).
func (kv *KV) LeaseDuration() time.Duration {
	if kv.lease == nil {
		return 0
	}
	return time.Duration(kv.leaseDur)
}

// LeaseHolder returns the replica currently entitled to serve lease
// reads — the holder of a valid, barrier-complete grant — or ok=false
// when there is none (anarchy, expiry, barrier still in flight, or
// leases disabled). ReadLease serves locally exactly when ok.
func (kv *KV) LeaseHolder() (holder int, ok bool) {
	if kv.lease == nil {
		return -1, false
	}
	h, _, ok := kv.lease.ReadableHolder(kv.eng.Now())
	return h, ok
}

// Len returns the number of keys in the applied state.
func (kv *KV) Len() int { return kv.readStore().Len() }

// Applied returns how many log entries the reading replica has applied.
func (kv *KV) Applied() int { return kv.readStore().Applied() }

// Snapshot returns a copy of the applied state.
func (kv *KV) Snapshot() map[uint16]uint16 { return kv.readStore().Snapshot() }

// Capacity returns the slot count of the replicated log's window. With
// checkpointing on (the default) this bounds only the in-flight portion
// of the stream — total write capacity is unbounded; with
// KVCheckpointEvery(0) it is the store's total capacity. On a batched
// store one slot commits up to BatchSize writes.
func (kv *KV) Capacity() int { return kv.stores[0].Capacity() }

// SlotsUsed returns how many consensus slots the reading replica has
// passed; on a checkpointing store it grows past Capacity as slots
// recycle. On a batched store this lags Applied by the batching factor —
// the ratio Applied()/SlotsUsed() is the measured average batch size.
func (kv *KV) SlotsUsed() int { return kv.readStore().SlotsDecided() }

// Batched reports whether the store packs multi-command batches into
// consensus slots (KVBatch with a size above 1).
func (kv *KV) Batched() bool { return kv.stores[0].Batched() }

// BatchSize returns how many queued writes one consensus slot may commit
// (1: batching off).
func (kv *KV) BatchSize() int { return kv.stores[0].MaxBatch() }

// CheckpointEvery returns how many decided slots separate checkpoint
// seals (0: checkpointing off, the log fills permanently).
func (kv *KV) CheckpointEvery() int { return kv.stores[0].CheckpointEvery() }

// Checkpoints returns how many checkpoints the reading replica has
// passed — the number of times a log prefix was sealed into a snapshot
// and its slots recycled.
func (kv *KV) Checkpoints() int { return kv.readStore().Checkpoints() }
