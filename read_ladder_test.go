package omegasm_test

import (
	"context"
	"testing"
	"time"

	"omegasm"
)

// TestReadLadderUnderLeaderCrash drives the ReadLease degrade ladder
// through leader crashes at different points of the lease lifecycle: a
// lease read issued during the post-crash anarchy must fall back to the
// quorum fence (not error, not block past re-election) and must never
// return a value older than a completed Put — then recover to serve the
// next Put linearizably. Four processes keep a read/write quorum alive
// across the single crash.
func TestReadLadderUnderLeaderCrash(t *testing.T) {
	cases := []struct {
		name string
		// crash picks when the agreed leader is crashed: before the
		// holder's grant becomes readable, after it, or never.
		crash string
	}{
		{name: "crash-before-lease-readable", crash: "before"},
		{name: "crash-after-lease-readable", crash: "after"},
		{name: "no-crash", crash: "never"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := startCluster(t, fastOpts(4)...)
			leader, ok := c.WaitForAgreement(10 * time.Second)
			if !ok {
				t.Fatal("no agreement")
			}
			kv, err := omegasm.NewKV(c, omegasm.KVStepInterval(50*time.Microsecond))
			if err != nil {
				t.Fatal(err)
			}
			defer kv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			if err := kv.Put(ctx, 7, 41); err != nil {
				t.Fatal(err)
			}
			switch tc.crash {
			case "before":
				if err := c.Crash(leader); err != nil {
					t.Fatal(err)
				}
			case "after":
				deadline := time.Now().Add(10 * time.Second)
				for {
					if _, ok := kv.LeaseHolder(); ok {
						break
					}
					if time.Now().After(deadline) {
						t.Fatal("no lease holder became readable")
					}
					time.Sleep(time.Millisecond)
				}
				if err := c.Crash(leader); err != nil {
					t.Fatal(err)
				}
			}
			// The ladder's invariant: however the crash landed relative to
			// the lease lifecycle, a ReadLease issued right now — possibly
			// mid-anarchy — completes without error and observes the
			// completed Put, never anything older.
			v, found, err := kv.Read(ctx, 7, omegasm.ReadLease)
			if err != nil {
				t.Fatalf("ReadLease during anarchy: %v", err)
			}
			if !found || v != 41 {
				t.Fatalf("ReadLease during anarchy = %d, %v; want 41 (stale or lost read)", v, found)
			}
			// Recovery: the surviving quorum accepts the next Put and both
			// linearizable modes observe it.
			if err := kv.Put(ctx, 7, 42); err != nil {
				t.Fatalf("Put after crash: %v", err)
			}
			for _, mode := range []omegasm.ReadMode{omegasm.ReadLease, omegasm.ReadQuorum} {
				v, found, err := kv.Read(ctx, 7, mode)
				if err != nil || !found || v != 42 {
					t.Fatalf("Read(mode %d) after recovery = %d, %v, %v; want 42", mode, v, found, err)
				}
			}
		})
	}
}
