package check

import (
	"fmt"
	"sort"
)

// absent is the register-state sentinel for "key never written".
const absent = uint32(1) << 16

// maxSearchOps bounds the per-key operation count of the linearization
// search (the done-set is a 64-bit mask); larger keys are undecided.
const maxSearchOps = 64

// checkLinearizable runs the per-key linearization search over the
// operations that claim linearizability: every Put plus every
// lease/quorum-mode Get. Each key is an independent register (the store
// has no cross-key transactions), so the search partitions by key — the
// standard Wing & Gong decomposition — and explores linearization
// orders with memoized (done-set, register-state) pairs. A key with no
// witness order is a proven violation; a search that exceeds
// Options.MaxStates is reported as undecided, never silently passed.
func checkLinearizable(h *History, opt Options, v *Verdict) {
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	perKey := make(map[uint16][]Op)
	for _, op := range h.Ops {
		switch {
		case op.Kind == Put:
			perKey[op.Key] = append(perKey[op.Key], op)
		case op.Kind == Get && (op.Mode == Lease || op.Mode == Quorum):
			if op.Return >= 0 {
				perKey[op.Key] = append(perKey[op.Key], op)
			}
		}
	}
	keys := make([]int, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, ki := range keys {
		k := uint16(ki)
		ops := perKey[k]
		strongReads := 0
		for _, op := range ops {
			if op.Kind == Get {
				strongReads++
			}
		}
		if strongReads == 0 {
			// A write-only history always has a witness (the real-time
			// partial order is acyclic); its agreement with the committed
			// stream is checkWriteOrder's job.
			continue
		}
		switch linearizeKey(ops, maxStates) {
		case searchOK:
		case searchFail:
			v.Violations = append(v.Violations, fmt.Sprintf(
				"key %d: no linearization order exists for its %d Puts and %d strong reads",
				k, len(ops)-strongReads, strongReads))
		case searchCapped:
			v.Undecided = append(v.Undecided, fmt.Sprintf(
				"key %d: linearization search exceeded %d states", k, maxStates))
		}
	}
}

// searchResult is the three-valued outcome of one key's search.
type searchResult int

const (
	searchOK searchResult = iota
	searchFail
	searchCapped
)

// memoKey identifies one search state: which operations have been
// linearized and what the register then holds.
type memoKey struct {
	done uint64
	val  uint32
}

// linearizeKey searches for a linearization of one key's operations: a
// total order that respects real time (an operation may only be
// linearized while no earlier-returned operation is still pending) and
// register semantics (a read observes exactly the latest linearized
// write). Pending Puts (Return < 0) may take effect at any point or
// never; completed operations must all be placed.
func linearizeKey(ops []Op, maxStates int) searchResult {
	if len(ops) > maxSearchOps {
		return searchCapped
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
	completedMask := uint64(0)
	for i, op := range ops {
		if op.Return >= 0 {
			completedMask |= 1 << uint(i)
		}
	}
	visited := make(map[memoKey]bool)
	capped := false
	var dfs func(done uint64, val uint32) bool
	dfs = func(done uint64, val uint32) bool {
		if done&completedMask == completedMask {
			return true
		}
		key := memoKey{done: done, val: val}
		if visited[key] {
			return false
		}
		if len(visited) >= maxStates {
			capped = true
			return false
		}
		visited[key] = true
		// frontier: the earliest return time of any undone completed op.
		// Only operations invoked at or before it may linearize next.
		frontier := int64(-1)
		for i, op := range ops {
			if done&(1<<uint(i)) != 0 || op.Return < 0 {
				continue
			}
			if frontier < 0 || op.Return < frontier {
				frontier = op.Return
			}
		}
		for i, op := range ops {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			if frontier >= 0 && op.Invoke > frontier {
				break // ops are invoke-sorted; nothing later is eligible
			}
			switch op.Kind {
			case Put:
				if dfs(done|1<<uint(i), uint32(op.Val)) {
					return true
				}
			case Get:
				consistent := (op.Found && val != absent && uint16(val) == op.Val) ||
					(!op.Found && val == absent)
				if consistent && dfs(done|1<<uint(i), val) {
					return true
				}
			}
		}
		return false
	}
	if dfs(0, absent) {
		return searchOK
	}
	if capped {
		return searchCapped
	}
	return searchFail
}
