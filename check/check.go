// Package check is the correctness checker behind the adversarial
// scenario campaigns: it consumes per-operation invocation/response
// histories recorded from deterministic SimKV/SimShardedKV runs (or any
// other harness that can produce a History, including the live KV) and
// verifies the guarantees the stack claims — linearizability of the
// write stream and of strong-mode reads, durability of every
// acknowledged write across checkpoint recycling, per-client read
// monotonicity, and lease no-overlap under a clock-skew bound eps.
//
// The checker is deliberately honest about guarantee tiers. Writes and
// lease/quorum reads are linearizable, so violations there are hard
// failures. Freshest-mode reads are sequentially consistent by design
// (they serve from a replica's applied state without coordination), so
// staleness and cross-crash monotonicity regressions are reported as
// near-misses — anomaly signal the campaign scorer ranks runs by — while
// phantom values (a read observing a value no write produced) stay hard
// violations even in that mode.
//
// Everything in this package is deterministic: verdicts are pure
// functions of the history, strings are stable run over run, and the
// canonical byte rendering (History.Canonical) is what the committed
// regression scenarios hash to assert byte-identical replays.
package check

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes operation types in a history.
type Kind int

// Operation kinds.
const (
	// Put is a write of (Key, Val); completion means the client saw the
	// write acknowledged as committed.
	Put Kind = iota
	// Get is a read of Key observing (Val, Found).
	Get
)

// Mode is the consistency tier a read was served under; writes ignore it.
type Mode int

// Read modes, mirroring the public KV's read ladder.
const (
	// Freshest is the uncoordinated freshest-replica read: sequential
	// consistency, checked for phantoms and scored for staleness.
	Freshest Mode = iota
	// Lease is a lease-local read: linearizable, checked strictly.
	Lease
	// Quorum is a fenced quorum read: linearizable, checked strictly.
	Quorum
)

// Op is one client operation of a history: an invocation/response event
// pair with the observed outcome.
type Op struct {
	// Client identifies the issuing client; per-client order is the
	// program order monotonicity is checked against.
	Client int
	// Kind says whether the operation is a Put or a Get.
	Kind Kind
	// Mode is the read's consistency tier (ignored for Puts).
	Mode Mode
	// Key is the operation's key.
	Key uint16
	// Val is the written value (Put) or the observed value (Get).
	Val uint16
	// Found reports whether a Get observed the key as present.
	Found bool
	// Invoke is the invocation time in virtual ticks.
	Invoke int64
	// Return is the response time in virtual ticks, -1 if the operation
	// was still outstanding when the run ended (pending operations
	// constrain nothing).
	Return int64
}

// Commit is one known entry of the global committed command stream, as
// observed by any replica that individually applied it. Positions a
// replica skipped by installing a snapshot are simply absent.
type Commit struct {
	// Pos is the entry's global position in the committed stream,
	// checkpoint-summarized prefix included.
	Pos int
	// Key and Val are the committed Set command's decoded pair.
	Key, Val uint16
}

// Grant is one recorded lease acquisition, in acquisition order.
type Grant struct {
	// Epoch is the grant's epoch; the register CAS makes consecutive
	// epochs differ by exactly one.
	Epoch uint64
	// Holder is the acquiring process.
	Holder int
	// AcquiredAt and Expiry bound the granted window in virtual ticks.
	AcquiredAt, Expiry int64
	// PrevExpiry is the previous grant's final (extension-included)
	// expiry as observed by this acquisition; 0 for the first grant.
	PrevExpiry int64
}

// History is the full record of one run, assembled by the recorder.
type History struct {
	// Ops is the client operation history, in recording order.
	Ops []Op
	// Commits lists every known position of the committed command
	// stream, ascending by Pos, merged across all replicas' applies.
	Commits []Commit
	// FinalApplied is how many commands of the committed stream the
	// freshest live replica had applied when the run ended.
	FinalApplied int
	// Final is that replica's applied key-value state at the end.
	Final map[uint16]uint16
	// Grants is the lease acquisition history (empty when unleased).
	Grants []Grant
	// External carries invariant breaches detected outside the checker
	// (e.g. the sim's in-run lease-read monitor); Verify folds them into
	// the verdict's violations verbatim.
	External []string
}

// Options tunes a Verify call.
type Options struct {
	// Eps is the clock-skew bound of the lease no-overlap check: two
	// grants whose windows come within Eps ticks of each other overlap.
	// Under the deterministic simulator 0 is exact.
	Eps int64
	// MaxStates caps the linearization search per key; a key whose
	// search exceeds it is reported as undecided rather than burning
	// unbounded time. 0 picks the default (1 << 20).
	MaxStates int
}

// Verdict is the outcome of a Verify: violations are proven guarantee
// breaches, near-misses are anomalies legal under the claimed guarantee
// tier but scored by the campaign, undecided lists checks that hit a
// search cap.
type Verdict struct {
	// Violations are proven breaches of claimed guarantees.
	Violations []string
	// NearMisses are legal-but-suspicious anomalies (staleness,
	// monotonicity regressions across crashes, unprovable durability).
	NearMisses []string
	// Undecided lists linearization searches that exceeded MaxStates.
	Undecided []string
}

// OK reports whether the verdict has no violations.
func (v Verdict) OK() bool { return len(v.Violations) == 0 }

// Verify runs every check over the history and returns the verdict: the
// external breaches, lease-grant audit, durability of acknowledged
// writes, final-state replay, per-key linearizability of the write
// stream and strong reads, phantom/staleness analysis of freshest
// reads, and per-client read monotonicity.
func Verify(h *History, opt Options) Verdict {
	var v Verdict
	v.Violations = append(v.Violations, h.External...)
	v.Violations = append(v.Violations, Leases(h.Grants, opt.Eps)...)
	checkDurability(h, &v)
	checkFinalState(h, &v)
	checkWriteOrder(h, &v)
	checkLinearizable(h, opt, &v)
	checkReads(h, &v)
	return v
}

// Canonical renders the history as deterministic bytes: the stable
// serialization the committed regression scenarios hash, so "replayed
// byte-identically" is a one-line comparison. Two histories are equal
// iff their canonical bytes are.
func (h *History) Canonical() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "ops %d\n", len(h.Ops))
	for _, op := range h.Ops {
		fmt.Fprintf(&b, "c%d k%d m%d key%d val%d f%t i%d r%d\n",
			op.Client, op.Kind, op.Mode, op.Key, op.Val, op.Found, op.Invoke, op.Return)
	}
	fmt.Fprintf(&b, "commits %d\n", len(h.Commits))
	for _, c := range h.Commits {
		fmt.Fprintf(&b, "p%d key%d val%d\n", c.Pos, c.Key, c.Val)
	}
	fmt.Fprintf(&b, "applied %d\n", h.FinalApplied)
	keys := make([]int, 0, len(h.Final))
	for k := range h.Final {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "final key%d val%d\n", k, h.Final[uint16(k)])
	}
	fmt.Fprintf(&b, "grants %d\n", len(h.Grants))
	for _, g := range h.Grants {
		fmt.Fprintf(&b, "e%d h%d a%d x%d p%d\n",
			g.Epoch, g.Holder, g.AcquiredAt, g.Expiry, g.PrevExpiry)
	}
	for _, s := range h.External {
		fmt.Fprintf(&b, "ext %s\n", s)
	}
	return []byte(b.String())
}

// Leases audits a grant history for the lease invariants: epochs advance
// by exactly one (the register CAS admits nothing else), no grant's
// window opens within eps of the previous grant's final expiry (the
// no-two-valid-leases-overlap property under clock skew eps), and the
// observed previous expiry never regresses below what was granted.
func Leases(grants []Grant, eps int64) []string {
	var out []string
	for i, g := range grants {
		if i > 0 && g.Epoch != grants[i-1].Epoch+1 {
			out = append(out, fmt.Sprintf(
				"grant %d: epoch %d after %d, want +1", i, g.Epoch, grants[i-1].Epoch))
		}
		if g.AcquiredAt <= g.PrevExpiry+eps {
			out = append(out, fmt.Sprintf(
				"grant %d: epoch %d (holder %d) acquired at %d within eps %d of the previous window (expiry %d) — leases overlap",
				i, g.Epoch, g.Holder, g.AcquiredAt, eps, g.PrevExpiry))
		}
		if i > 0 && g.PrevExpiry < grants[i-1].Expiry {
			out = append(out, fmt.Sprintf(
				"grant %d: observed previous expiry %d below the granted %d — expiry regressed",
				i, g.PrevExpiry, grants[i-1].Expiry))
		}
	}
	return out
}
