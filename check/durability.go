package check

import (
	"fmt"
	"sort"
)

// commitIndex is the per-history lookup the stream-based checks share:
// known positions, per-key version sequences, and whether the known
// prefix below FinalApplied is gap-free.
type commitIndex struct {
	known map[int]Commit
	// byKey[k] is key k's committed version sequence in stream order.
	byKey map[uint16][]Commit
	// gaps counts positions in [0, FinalApplied) absent from Commits —
	// positions every recording replica skipped via snapshot install.
	gaps int
	// maxPos is the highest known position, -1 when empty.
	maxPos int
}

func indexCommits(h *History) *commitIndex {
	ix := &commitIndex{
		known:  make(map[int]Commit, len(h.Commits)),
		byKey:  make(map[uint16][]Commit),
		maxPos: -1,
	}
	for _, c := range h.Commits {
		ix.known[c.Pos] = c
		ix.byKey[c.Key] = append(ix.byKey[c.Key], c)
		if c.Pos > ix.maxPos {
			ix.maxPos = c.Pos
		}
	}
	for p := 0; p < h.FinalApplied; p++ {
		if _, ok := ix.known[p]; !ok {
			ix.gaps++
		}
	}
	return ix
}

// checkDurability verifies that no acknowledged write was lost: every
// Put whose response the client saw must appear in the committed stream
// (duplicates from cross-failover resubmission are fine — durability
// needs at least one occurrence). When the stream has unknown gaps the
// absence is unprovable and reported as a near-miss instead.
func checkDurability(h *History, v *Verdict) {
	ix := indexCommits(h)
	for i, op := range h.Ops {
		if op.Kind != Put || op.Return < 0 {
			continue
		}
		found := false
		for _, c := range ix.byKey[op.Key] {
			if c.Val == op.Val {
				found = true
				break
			}
		}
		if found {
			continue
		}
		if ix.gaps > 0 {
			v.NearMisses = append(v.NearMisses, fmt.Sprintf(
				"op %d: acknowledged Put(%d, %d) not in the known committed stream, but %d positions are unrecorded — durability unprovable",
				i, op.Key, op.Val, ix.gaps))
			continue
		}
		v.Violations = append(v.Violations, fmt.Sprintf(
			"op %d: acknowledged Put(%d, %d) by client %d (returned t=%d) is absent from the committed stream — a committed write was lost",
			i, op.Key, op.Val, op.Client, op.Return))
	}
}

// checkFinalState replays the known committed prefix below FinalApplied
// and compares it with the freshest replica's final applied state. With
// a gap-free prefix the two must be identical — any divergence means a
// replica applied something other than the committed stream (including
// across checkpoint recycling, whose snapshot installs must be exact).
func checkFinalState(h *History, v *Verdict) {
	ix := indexCommits(h)
	if h.Final == nil {
		return
	}
	if ix.gaps > 0 {
		v.NearMisses = append(v.NearMisses, fmt.Sprintf(
			"final state unprovable: %d of the first %d committed positions are unrecorded",
			ix.gaps, h.FinalApplied))
		return
	}
	replayed := make(map[uint16]uint16)
	for p := 0; p < h.FinalApplied; p++ {
		c := ix.known[p]
		replayed[c.Key] = c.Val
	}
	keys := make([]int, 0, len(replayed)+len(h.Final))
	for k := range replayed {
		keys = append(keys, int(k))
	}
	for k := range h.Final {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	prev := -1
	for _, ki := range keys {
		if ki == prev {
			continue
		}
		prev = ki
		k := uint16(ki)
		rv, rok := replayed[k]
		fv, fok := h.Final[k]
		if rok != fok || rv != fv {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"final state diverges from the committed stream at key %d: replay has (%d, present=%t), applied state has (%d, present=%t)",
				k, rv, rok, fv, fok))
		}
	}
}

// checkWriteOrder verifies the write stream respects real time: if Put A
// was acknowledged before Put B was invoked, A must precede B in the
// committed stream. To stay immune to duplicate commits and repeated
// (key, value) pairs, the check only constrains writes whose pair is
// unique among Puts and appears exactly once in the stream — on such
// pairs a real-time inversion is a proven linearizability violation of
// the write path.
func checkWriteOrder(h *History, v *Verdict) {
	ix := indexCommits(h)
	type ref struct {
		op  int
		pos int
	}
	pairOps := make(map[uint32][]int)
	for i, op := range h.Ops {
		if op.Kind == Put {
			pairOps[uint32(op.Key)<<16|uint32(op.Val)] = append(pairOps[uint32(op.Key)<<16|uint32(op.Val)], i)
		}
	}
	var anchored []ref
	for i, op := range h.Ops {
		if op.Kind != Put || op.Return < 0 {
			continue
		}
		pair := uint32(op.Key)<<16 | uint32(op.Val)
		if len(pairOps[pair]) != 1 {
			continue
		}
		occ := -1
		dup := false
		for _, c := range ix.byKey[op.Key] {
			if c.Val == op.Val {
				if occ >= 0 {
					dup = true
					break
				}
				occ = c.Pos
			}
		}
		if dup || occ < 0 {
			continue
		}
		anchored = append(anchored, ref{op: i, pos: occ})
	}
	for _, a := range anchored {
		for _, b := range anchored {
			opA, opB := h.Ops[a.op], h.Ops[b.op]
			if opA.Return < opB.Invoke && a.pos > b.pos {
				v.Violations = append(v.Violations, fmt.Sprintf(
					"write order inverts real time: Put(%d, %d) returned t=%d but committed at position %d, after Put(%d, %d) (invoked t=%d, position %d)",
					opA.Key, opA.Val, opA.Return, a.pos, opB.Key, opB.Val, opB.Invoke, b.pos))
			}
		}
	}
}

// checkReads analyzes completed Get operations. Freshest-mode reads are
// sequentially consistent by contract, so the hard checks are phantom
// detection (an observed value no committed write produced, or a value
// whose only producing Put was invoked after the read returned) while
// staleness-shaped anomalies — a missing key after an acknowledged Put,
// per-client monotonicity regressions — are near-misses. Strong-mode
// reads get the same phantom checks here and the full linearization
// search in checkLinearizable.
func checkReads(h *History, v *Verdict) {
	ix := indexCommits(h)
	// lastVer[client<<16|key] is the latest committed-stream position the
	// client has provably observed for the key.
	type ck struct {
		client int
		key    uint16
	}
	lastVer := make(map[ck]int)
	for i, op := range h.Ops {
		if op.Kind != Get || op.Return < 0 {
			continue
		}
		versions := ix.byKey[op.Key]
		if !op.Found {
			if earliestAckedPut(h, op.Key, op.Invoke) {
				v.NearMisses = append(v.NearMisses, fmt.Sprintf(
					"op %d: client %d read key %d as absent after an acknowledged Put completed — stale by a whole key",
					i, op.Client, op.Key))
			}
			continue
		}
		// Phantom: the observed value must have been committed for this
		// key, and its producing Put must have been invoked by then.
		matchPos := -1
		for _, c := range versions {
			if c.Val == op.Val {
				matchPos = c.Pos
				break
			}
		}
		if matchPos < 0 {
			if ix.gaps > 0 && putExists(h, op.Key, op.Val) {
				v.NearMisses = append(v.NearMisses, fmt.Sprintf(
					"op %d: client %d read (%d, %d) which no recorded commit produced, but %d positions are unrecorded",
					i, op.Client, op.Key, op.Val, ix.gaps))
			} else {
				v.Violations = append(v.Violations, fmt.Sprintf(
					"op %d: client %d read phantom value (%d, %d): no committed write ever produced it",
					i, op.Client, op.Key, op.Val))
			}
			continue
		}
		if onlyFuturePuts(h, op) {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"op %d: client %d read (%d, %d) before any Put of that pair was invoked — a read from the future",
				i, op.Client, op.Key, op.Val))
		}
		// Per-client monotonicity along the key's version sequence. A
		// freshest-mode regression is legal (the freshest replica can
		// change across a crash) but scored; strong modes never regress —
		// their linearizability is checked by the search, so here the
		// regression is reported at near-miss strength for both tiers to
		// keep this pass purely order-based.
		key := ck{client: op.Client, key: op.Key}
		if prevPos, ok := lastVer[key]; ok {
			// The op's observed version: the latest occurrence of the value
			// at or after the previously observed one, else the latest at
			// all (the value regressed).
			pos := -1
			for _, c := range versions {
				if c.Val == op.Val && c.Pos >= prevPos {
					pos = c.Pos
					break
				}
			}
			if pos < 0 {
				v.NearMisses = append(v.NearMisses, fmt.Sprintf(
					"op %d: client %d re-read key %d at an older version (value %d precedes position %d) — monotone-read regression",
					i, op.Client, op.Key, op.Val, prevPos))
				pos = matchPos
			}
			lastVer[key] = pos
		} else {
			lastVer[key] = matchPos
		}
	}
}

// earliestAckedPut reports whether some Put of key was acknowledged
// before t.
func earliestAckedPut(h *History, key uint16, t int64) bool {
	for _, op := range h.Ops {
		if op.Kind == Put && op.Key == key && op.Return >= 0 && op.Return < t {
			return true
		}
	}
	return false
}

// putExists reports whether any Put op wrote (key, val).
func putExists(h *History, key, val uint16) bool {
	for _, op := range h.Ops {
		if op.Kind == Put && op.Key == key && op.Val == val {
			return true
		}
	}
	return false
}

// onlyFuturePuts reports whether every Put producing the read's observed
// pair was invoked after the read returned (so the read cannot have
// observed any of them).
func onlyFuturePuts(h *History, read Op) bool {
	any := false
	for _, op := range h.Ops {
		if op.Kind == Put && op.Key == read.Key && op.Val == read.Val {
			any = true
			if op.Invoke <= read.Return {
				return false
			}
		}
	}
	return any
}
