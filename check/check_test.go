package check_test

import (
	"bytes"
	"strings"
	"testing"

	"omegasm/check"
)

// cleanHistory is a small correct run: two acknowledged writes, strong
// and freshest reads observing them in order, a gap-free committed
// stream and a matching final state.
func cleanHistory() *check.History {
	return &check.History{
		Ops: []check.Op{
			{Client: 0, Kind: check.Put, Key: 1, Val: 10, Invoke: 100, Return: 200},
			{Client: 0, Kind: check.Put, Key: 1, Val: 11, Invoke: 300, Return: 400},
			{Client: 1, Kind: check.Get, Mode: check.Quorum, Key: 1, Val: 11, Found: true, Invoke: 500, Return: 600},
			{Client: 1, Kind: check.Get, Mode: check.Freshest, Key: 1, Val: 11, Found: true, Invoke: 700, Return: 700},
		},
		Commits:      []check.Commit{{Pos: 0, Key: 1, Val: 10}, {Pos: 1, Key: 1, Val: 11}},
		FinalApplied: 2,
		Final:        map[uint16]uint16{1: 11},
	}
}

func TestVerifyCleanHistory(t *testing.T) {
	v := check.Verify(cleanHistory(), check.Options{})
	if !v.OK() || len(v.NearMisses) != 0 || len(v.Undecided) != 0 {
		t.Fatalf("clean history flagged: %+v", v)
	}
}

func TestVerifyLostAcknowledgedWrite(t *testing.T) {
	h := cleanHistory()
	// The second acknowledged Put vanishes from the committed stream.
	h.Ops = h.Ops[:2]
	h.Commits = h.Commits[:1]
	h.FinalApplied = 1
	h.Final = map[uint16]uint16{1: 10}
	v := check.Verify(h, check.Options{})
	if v.OK() {
		t.Fatal("lost acknowledged write not detected")
	}
	if !containsSub(v.Violations, "committed write was lost") {
		t.Fatalf("wrong violation: %v", v.Violations)
	}
}

func TestVerifyLostWriteUnprovableWithGaps(t *testing.T) {
	h := cleanHistory()
	h.Ops = h.Ops[:2]
	// Position 1 is unrecorded (a snapshot-install gap): absence of the
	// second write is unprovable, so it must downgrade to a near-miss.
	h.Commits = h.Commits[:1]
	h.Final = nil
	v := check.Verify(h, check.Options{})
	if !v.OK() {
		t.Fatalf("gap history must not hard-fail: %v", v.Violations)
	}
	if !containsSub(v.NearMisses, "durability unprovable") {
		t.Fatalf("missing near-miss: %v", v.NearMisses)
	}
}

func TestVerifyPhantomRead(t *testing.T) {
	h := cleanHistory()
	h.Ops = append(h.Ops, check.Op{
		Client: 2, Kind: check.Get, Mode: check.Freshest,
		Key: 1, Val: 99, Found: true, Invoke: 800, Return: 800,
	})
	v := check.Verify(h, check.Options{})
	if !containsSub(v.Violations, "phantom value") {
		t.Fatalf("phantom read not detected: %+v", v)
	}
}

func TestVerifyFutureRead(t *testing.T) {
	h := cleanHistory()
	// A read observes value 12 before the Put producing it is invoked.
	h.Ops = append(h.Ops,
		check.Op{Client: 2, Kind: check.Get, Mode: check.Freshest, Key: 1, Val: 12, Found: true, Invoke: 800, Return: 810},
		check.Op{Client: 0, Kind: check.Put, Key: 1, Val: 12, Invoke: 900, Return: 950},
	)
	h.Commits = append(h.Commits, check.Commit{Pos: 2, Key: 1, Val: 12})
	h.FinalApplied = 3
	h.Final = map[uint16]uint16{1: 12}
	v := check.Verify(h, check.Options{})
	if !containsSub(v.Violations, "read from the future") {
		t.Fatalf("future read not detected: %+v", v)
	}
}

func TestVerifyMonotoneRegressionIsNearMiss(t *testing.T) {
	h := cleanHistory()
	// The same client re-reads the older version after seeing the newer
	// one — legal under sequential consistency, but scored.
	h.Ops = append(h.Ops, check.Op{
		Client: 1, Kind: check.Get, Mode: check.Freshest,
		Key: 1, Val: 10, Found: true, Invoke: 800, Return: 800,
	})
	v := check.Verify(h, check.Options{})
	if !v.OK() {
		t.Fatalf("freshest-mode regression must not hard-fail: %v", v.Violations)
	}
	if !containsSub(v.NearMisses, "monotone-read regression") {
		t.Fatalf("missing near-miss: %+v", v)
	}
}

func TestVerifyWriteOrderInversion(t *testing.T) {
	h := &check.History{
		Ops: []check.Op{
			{Client: 0, Kind: check.Put, Key: 1, Val: 10, Invoke: 100, Return: 200},
			{Client: 0, Kind: check.Put, Key: 1, Val: 11, Invoke: 300, Return: 400},
		},
		// The stream commits the later write first.
		Commits:      []check.Commit{{Pos: 0, Key: 1, Val: 11}, {Pos: 1, Key: 1, Val: 10}},
		FinalApplied: 2,
		Final:        map[uint16]uint16{1: 10},
	}
	v := check.Verify(h, check.Options{})
	if !containsSub(v.Violations, "inverts real time") {
		t.Fatalf("write-order inversion not detected: %+v", v)
	}
}

func TestVerifyFinalStateDivergence(t *testing.T) {
	h := cleanHistory()
	h.Final = map[uint16]uint16{1: 10} // stream says 11
	v := check.Verify(h, check.Options{})
	if !containsSub(v.Violations, "final state diverges") {
		t.Fatalf("final-state divergence not detected: %+v", v)
	}
}

func TestVerifyNonLinearizableStrongReads(t *testing.T) {
	h := &check.History{
		Ops: []check.Op{
			{Client: 0, Kind: check.Put, Key: 1, Val: 10, Invoke: 100, Return: 200},
			{Client: 0, Kind: check.Put, Key: 1, Val: 11, Invoke: 300, Return: 400},
			// Strictly after both writes completed, a strong read observes
			// the first value after another strong read observed the second:
			// no register order explains both.
			{Client: 1, Kind: check.Get, Mode: check.Lease, Key: 1, Val: 11, Found: true, Invoke: 500, Return: 600},
			{Client: 1, Kind: check.Get, Mode: check.Lease, Key: 1, Val: 10, Found: true, Invoke: 700, Return: 800},
		},
		Commits:      []check.Commit{{Pos: 0, Key: 1, Val: 10}, {Pos: 1, Key: 1, Val: 11}},
		FinalApplied: 2,
		Final:        map[uint16]uint16{1: 11},
	}
	v := check.Verify(h, check.Options{})
	if !containsSub(v.Violations, "no linearization order") {
		t.Fatalf("non-linearizable strong reads not detected: %+v", v)
	}
}

func TestVerifyPendingOpsConstrainNothing(t *testing.T) {
	h := cleanHistory()
	// A Put still outstanding at the horizon may or may not take effect.
	h.Ops = append(h.Ops, check.Op{
		Client: 3, Kind: check.Put, Key: 1, Val: 42, Invoke: 900, Return: -1,
	})
	v := check.Verify(h, check.Options{})
	if !v.OK() || len(v.NearMisses) != 0 {
		t.Fatalf("pending op flagged: %+v", v)
	}
}

func TestLeases(t *testing.T) {
	good := []check.Grant{
		{Epoch: 1, Holder: 0, AcquiredAt: 100, Expiry: 200, PrevExpiry: 0},
		{Epoch: 2, Holder: 1, AcquiredAt: 250, Expiry: 350, PrevExpiry: 200},
	}
	if out := check.Leases(good, 0); len(out) != 0 {
		t.Fatalf("clean grants flagged: %v", out)
	}
	// Overlap: the second grant opens before the first's expiry passed.
	overlap := []check.Grant{
		{Epoch: 1, Holder: 0, AcquiredAt: 100, Expiry: 300, PrevExpiry: 0},
		{Epoch: 2, Holder: 1, AcquiredAt: 250, Expiry: 400, PrevExpiry: 300},
	}
	if out := check.Leases(overlap, 0); !containsSub(out, "leases overlap") {
		t.Fatalf("overlap not detected: %v", out)
	}
	// eps > 0 tightens the window: a grant inside the skew bound fails.
	tight := []check.Grant{
		{Epoch: 1, Holder: 0, AcquiredAt: 100, Expiry: 200, PrevExpiry: 0},
		{Epoch: 2, Holder: 1, AcquiredAt: 205, Expiry: 350, PrevExpiry: 200},
	}
	if out := check.Leases(tight, 0); len(out) != 0 {
		t.Fatalf("eps 0 must accept a 5-tick margin: %v", out)
	}
	if out := check.Leases(tight, 10); !containsSub(out, "leases overlap") {
		t.Fatalf("eps 10 must reject a 5-tick margin: %v", out)
	}
	// Epoch skips mean a lost acquisition record.
	skip := []check.Grant{
		{Epoch: 1, Holder: 0, AcquiredAt: 100, Expiry: 200, PrevExpiry: 0},
		{Epoch: 3, Holder: 1, AcquiredAt: 250, Expiry: 350, PrevExpiry: 200},
	}
	if out := check.Leases(skip, 0); !containsSub(out, "want +1") {
		t.Fatalf("epoch skip not detected: %v", out)
	}
}

func TestVerifyFoldsExternalBreaches(t *testing.T) {
	h := cleanHistory()
	h.External = []string{"t=123: stale lease read"}
	v := check.Verify(h, check.Options{})
	if v.OK() || !containsSub(v.Violations, "stale lease read") {
		t.Fatalf("external breach not folded in: %+v", v)
	}
}

func TestCanonicalIsStableAndDiscriminating(t *testing.T) {
	a := cleanHistory().Canonical()
	b := cleanHistory().Canonical()
	if !bytes.Equal(a, b) {
		t.Fatal("canonical bytes differ across identical histories")
	}
	h := cleanHistory()
	h.Ops[0].Val = 99
	if bytes.Equal(a, h.Canonical()) {
		t.Fatal("canonical bytes identical across differing histories")
	}
}

// containsSub reports whether any string in xs contains sub.
func containsSub(xs []string, sub string) bool {
	for _, x := range xs {
		if strings.Contains(x, sub) {
			return true
		}
	}
	return false
}
